// fault_plan.hpp — declarative, deterministic fault scenarios.
//
// A FaultPlan is pure data: timed fault clauses expressed against a
// transmission's timeline and the tree's receiver *ranks* (indices into
// MulticastTree::receivers()), so one plan applies to any trace with
// enough receivers and rides inside ExperimentConfig through the parallel
// runner without losing determinism. Clauses cover the failure modes the
// §3.3 graceful-degradation argument hand-waves over:
//
//  * CrashEvent      — crash-stop or crash-recover of a member;
//  * LinkOutage      — a link down for an interval, including full
//                      partitions of a subtree (pick a height above the
//                      anchoring receiver);
//  * ControlLossBurst — extra Gilbert–Elliott loss on control/recovery
//                      traffic (requests, replies, expedited, session);
//  * SourcePause     — the source stops transmitting for an interval;
//  * PerturbBurst    — packet duplication and delay-jitter bursts.
//
// The FaultScheduler resolves and applies a plan to one concrete
// simulation; the InvariantOracle checks that recovery survives it. The
// shipped scenario builders encode the §3.3 claims as reusable plans.
#pragma once

#include <string>
#include <vector>

#include "net/topology.hpp"
#include "sim/time.hpp"

namespace cesrm::fault {

/// Rank denoting the transmission source instead of a receiver.
inline constexpr int kSourceRank = -1;

/// Crash-stop (recover_at = infinity) or crash-recover of one member.
struct CrashEvent {
  int receiver_rank = 0;  ///< index into tree.receivers(); kSourceRank = source
  sim::SimTime at;
  sim::SimTime recover_at = sim::SimTime::infinity();
  bool recovers() const { return recover_at < sim::SimTime::infinity(); }
};

/// Takes a link down for an interval (up_at = infinity: never heals). The
/// link is named by a receiver rank plus a height: the edge above the
/// receiver's ancestor `height` levels up, clamped below the root — so
/// height 0 severs one receiver's access link and larger heights partition
/// whole subtrees.
struct LinkOutage {
  int receiver_rank = 0;
  int height = 0;
  sim::SimTime down_at;
  sim::SimTime up_at = sim::SimTime::infinity();
  bool heals() const { return up_at < sim::SimTime::infinity(); }
};

/// Extra Gilbert–Elliott loss applied to every non-data packet crossing
/// during [from, until) — the bursty control-plane loss SRM-lineage
/// deployments observed. Data packets keep replaying the trace untouched.
struct ControlLossBurst {
  sim::SimTime from;
  sim::SimTime until;
  double loss_rate = 0.25;  ///< stationary loss rate of the chain
  double mean_burst = 4.0;  ///< mean loss-burst length, packets
  bool include_session = true;
};

/// Stops the source from transmitting during [at, until); deferred
/// packets resume at `until`, spaced by the trace's period.
struct SourcePause {
  sim::SimTime at;
  sim::SimTime until;
};

/// Packet duplication and delay-jitter on every crossing in [from, until).
struct PerturbBurst {
  sim::SimTime from;
  sim::SimTime until;
  double dup_probability = 0.0;
  sim::SimTime max_extra_delay = sim::SimTime::zero();
};

struct FaultPlan {
  std::vector<CrashEvent> crashes;
  std::vector<LinkOutage> outages;
  std::vector<ControlLossBurst> control_bursts;
  std::vector<SourcePause> pauses;
  std::vector<PerturbBurst> perturb_bursts;

  bool empty() const {
    return crashes.empty() && outages.empty() && control_bursts.empty() &&
           pauses.empty() && perturb_bursts.empty();
  }

  /// CHECKs clause sanity: rank/height bounds, interval ordering, rates.
  void validate() const;

  /// Extra simulated time a faulted run needs beyond the lossless horizon:
  /// deferred transmissions replay after pauses, recovered members catch
  /// up, and healed partitions leave request timers backed off by up to
  /// the outage length again.
  sim::SimTime horizon_slack() const;

  /// Compact one-line description for reproduction messages and reports.
  std::string summary() const;
};

// --- resolution against a concrete tree -----------------------------------

struct ResolvedCrash {
  net::NodeId node = net::kInvalidNode;
  sim::SimTime at;
  sim::SimTime recover_at = sim::SimTime::infinity();
  bool recovers() const { return recover_at < sim::SimTime::infinity(); }
};

struct ResolvedOutage {
  net::LinkId link = net::kInvalidLink;
  sim::SimTime down_at;
  sim::SimTime up_at = sim::SimTime::infinity();
  bool heals() const { return up_at < sim::SimTime::infinity(); }
};

/// Maps a rank to its member node; CHECK-fails on an out-of-range rank.
net::NodeId resolve_rank(int receiver_rank, const net::MulticastTree& tree);
ResolvedCrash resolve(const CrashEvent& crash, const net::MulticastTree& tree);
ResolvedOutage resolve(const LinkOutage& outage,
                       const net::MulticastTree& tree);

// --- shipped §3.3 graceful-degradation scenarios ---------------------------

/// Timeline anchors for the scenario builders: `receivers` members, data
/// flowing over [data_start, data_end).
struct ScenarioContext {
  int receivers = 0;
  sim::SimTime data_start;
  sim::SimTime data_end;
};

struct NamedPlan {
  std::string name;
  FaultPlan plan;
};

/// Crash-stops the last ceil(crash_fraction · R) receivers at the
/// midpoint — the cached-replier-dies churn scenario of bench_churn.
FaultPlan replier_crash_plan(const ScenarioContext& ctx,
                             double crash_fraction = 0.3);
/// Partitions the subtree above receiver 0 for the middle ~15% of the
/// transmission, then heals it.
FaultPlan subtree_partition_plan(const ScenarioContext& ctx);
/// Pauses the source over [45%, 60%] of the transmission.
FaultPlan source_pause_plan(const ScenarioContext& ctx);
/// Bursty Gilbert–Elliott loss on all control traffic over [30%, 70%].
FaultPlan control_loss_plan(const ScenarioContext& ctx);
/// Crashes the last third of the receivers at 40% and recovers them at
/// 70%; they catch up on everything missed.
FaultPlan crash_recover_plan(const ScenarioContext& ctx);
/// Packet duplication (5%) plus delay jitter over the middle half.
FaultPlan duplication_jitter_plan(const ScenarioContext& ctx);

/// The shipped scenarios in bench/report order: replier crash, subtree
/// partition + heal, source pause, control-loss burst, crash-recover,
/// duplication + jitter.
std::vector<NamedPlan> shipped_scenarios(const ScenarioContext& ctx);

}  // namespace cesrm::fault
