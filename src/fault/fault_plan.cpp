#include "fault/fault_plan.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace cesrm::fault {
namespace {

void check_interval(sim::SimTime from, sim::SimTime until, const char* what) {
  CESRM_CHECK_MSG(from >= sim::SimTime::zero(), what);
  CESRM_CHECK_MSG(until > from, what);
}

/// Renders a time as fractional seconds, e.g. "12.5s" / "inf".
std::string fmt_time(sim::SimTime t) {
  if (t >= sim::SimTime::infinity()) return "inf";
  std::ostringstream os;
  os << t.to_seconds() << "s";
  return os.str();
}

std::string fmt_rank(int rank) {
  return rank == kSourceRank ? "src" : "r" + std::to_string(rank);
}

}  // namespace

void FaultPlan::validate() const {
  for (const auto& c : crashes) {
    CESRM_CHECK_MSG(c.receiver_rank >= kSourceRank, "crash rank out of range");
    CESRM_CHECK_MSG(c.at >= sim::SimTime::zero(), "crash time negative");
    CESRM_CHECK_MSG(c.recover_at > c.at, "recovery precedes crash");
  }
  for (const auto& o : outages) {
    CESRM_CHECK_MSG(o.receiver_rank >= 0, "outage rank out of range");
    CESRM_CHECK_MSG(o.height >= 0, "outage height negative");
    check_interval(o.down_at, o.up_at, "outage interval inverted");
  }
  for (const auto& b : control_bursts) {
    check_interval(b.from, b.until, "control-loss interval inverted");
    CESRM_CHECK_MSG(b.loss_rate >= 0.0 && b.loss_rate < 1.0,
                    "control-loss rate outside [0,1)");
    CESRM_CHECK_MSG(b.mean_burst >= 1.0, "control-loss burst < 1");
  }
  for (const auto& p : pauses)
    check_interval(p.at, p.until, "source-pause interval inverted");
  for (const auto& b : perturb_bursts) {
    check_interval(b.from, b.until, "perturb interval inverted");
    CESRM_CHECK_MSG(b.dup_probability >= 0.0 && b.dup_probability <= 1.0,
                    "duplication probability outside [0,1]");
    CESRM_CHECK_MSG(b.max_extra_delay >= sim::SimTime::zero(),
                    "negative delay jitter");
  }
}

sim::SimTime FaultPlan::horizon_slack() const {
  sim::SimTime slack = sim::SimTime::zero();
  // Deferred transmissions replay after the pause ends, one period apart —
  // the tail shifts by the pause length. A crashed-then-recovered source
  // behaves the same way.
  for (const auto& p : pauses) slack += p.until - p.at;
  for (const auto& c : crashes)
    if (c.recovers()) {
      if (c.receiver_rank == kSourceRank) slack += c.recover_at - c.at;
      // A recovered receiver re-detects everything it missed at once; its
      // catch-up is bounded by the normal recovery machinery, give it the
      // downtime again as settling room.
      slack += c.recover_at - c.at;
    }
  // A healed partition leaves request timers backed off by up to the
  // outage length; the next request fires at most one more doubling out.
  for (const auto& o : outages)
    if (o.heals()) slack += (o.up_at - o.down_at) + (o.up_at - o.down_at);
  // Recoveries suppressed by a control-loss burst retry right after it.
  for (const auto& b : control_bursts) slack += b.until - b.from;
  return slack;
}

std::string FaultPlan::summary() const {
  if (empty()) return "none";
  std::ostringstream os;
  const char* sep = "";
  for (const auto& c : crashes) {
    os << sep << "crash[" << fmt_rank(c.receiver_rank) << "@"
       << fmt_time(c.at);
    if (c.recovers()) os << "-" << fmt_time(c.recover_at);
    os << "]";
    sep = " ";
  }
  for (const auto& o : outages) {
    os << sep << "outage[" << fmt_rank(o.receiver_rank) << "^" << o.height
       << "@" << fmt_time(o.down_at) << "-" << fmt_time(o.up_at) << "]";
    sep = " ";
  }
  for (const auto& b : control_bursts) {
    os << sep << "ctrl-loss[" << fmt_time(b.from) << "-" << fmt_time(b.until)
       << "," << b.loss_rate << "x" << b.mean_burst
       << (b.include_session ? "" : ",no-session") << "]";
    sep = " ";
  }
  for (const auto& p : pauses) {
    os << sep << "pause[" << fmt_time(p.at) << "-" << fmt_time(p.until)
       << "]";
    sep = " ";
  }
  for (const auto& b : perturb_bursts) {
    os << sep << "perturb[" << fmt_time(b.from) << "-" << fmt_time(b.until)
       << ",dup=" << b.dup_probability
       << ",jitter<=" << fmt_time(b.max_extra_delay) << "]";
    sep = " ";
  }
  return os.str();
}

net::NodeId resolve_rank(int receiver_rank, const net::MulticastTree& tree) {
  if (receiver_rank == kSourceRank) return tree.root();
  const auto& receivers = tree.receivers();
  CESRM_CHECK_MSG(receiver_rank >= 0 &&
                      static_cast<std::size_t>(receiver_rank) <
                          receivers.size(),
                  "receiver rank exceeds tree");
  return receivers[static_cast<std::size_t>(receiver_rank)];
}

ResolvedCrash resolve(const CrashEvent& crash, const net::MulticastTree& tree) {
  return ResolvedCrash{resolve_rank(crash.receiver_rank, tree), crash.at,
                       crash.recover_at};
}

ResolvedOutage resolve(const LinkOutage& outage,
                       const net::MulticastTree& tree) {
  net::NodeId node = resolve_rank(outage.receiver_rank, tree);
  CESRM_CHECK_MSG(!tree.is_root(node), "cannot sever the root");
  // Climb `height` levels, stopping below the root so the cut edge always
  // exists. The link is identified by its child endpoint.
  for (int i = 0; i < outage.height && !tree.is_root(tree.parent(node)); ++i)
    node = tree.parent(node);
  return ResolvedOutage{node, outage.down_at, outage.up_at};
}

namespace {

/// Time at fraction `f` of the context's data window.
sim::SimTime at_fraction(const ScenarioContext& ctx, double f) {
  return ctx.data_start + (ctx.data_end - ctx.data_start) * f;
}

void check_ctx(const ScenarioContext& ctx) {
  CESRM_CHECK_MSG(ctx.receivers > 0, "scenario needs receivers");
  CESRM_CHECK_MSG(ctx.data_end > ctx.data_start, "empty data window");
}

}  // namespace

FaultPlan replier_crash_plan(const ScenarioContext& ctx,
                             double crash_fraction) {
  check_ctx(ctx);
  CESRM_CHECK_MSG(crash_fraction > 0.0 && crash_fraction < 1.0,
                  "crash fraction outside (0,1)");
  const int crashed = std::min(
      ctx.receivers - 1,
      static_cast<int>(
          std::ceil(static_cast<double>(ctx.receivers) * crash_fraction)));
  const sim::SimTime when = at_fraction(ctx, 0.5);
  FaultPlan plan;
  for (int i = 0; i < crashed; ++i)
    plan.crashes.push_back(CrashEvent{ctx.receivers - 1 - i, when});
  return plan;
}

FaultPlan subtree_partition_plan(const ScenarioContext& ctx) {
  check_ctx(ctx);
  FaultPlan plan;
  plan.outages.push_back(
      LinkOutage{0, 1, at_fraction(ctx, 0.30), at_fraction(ctx, 0.45)});
  return plan;
}

FaultPlan source_pause_plan(const ScenarioContext& ctx) {
  check_ctx(ctx);
  FaultPlan plan;
  plan.pauses.push_back(
      SourcePause{at_fraction(ctx, 0.45), at_fraction(ctx, 0.60)});
  return plan;
}

FaultPlan control_loss_plan(const ScenarioContext& ctx) {
  check_ctx(ctx);
  FaultPlan plan;
  ControlLossBurst burst;
  burst.from = at_fraction(ctx, 0.30);
  burst.until = at_fraction(ctx, 0.70);
  burst.loss_rate = 0.25;
  burst.mean_burst = 4.0;
  plan.control_bursts.push_back(burst);
  return plan;
}

FaultPlan crash_recover_plan(const ScenarioContext& ctx) {
  check_ctx(ctx);
  const int crashed =
      std::min(ctx.receivers - 1, (ctx.receivers + 2) / 3);
  const sim::SimTime down = at_fraction(ctx, 0.40);
  const sim::SimTime up = at_fraction(ctx, 0.70);
  FaultPlan plan;
  for (int i = 0; i < crashed; ++i)
    plan.crashes.push_back(CrashEvent{ctx.receivers - 1 - i, down, up});
  return plan;
}

FaultPlan duplication_jitter_plan(const ScenarioContext& ctx) {
  check_ctx(ctx);
  FaultPlan plan;
  PerturbBurst burst;
  burst.from = at_fraction(ctx, 0.25);
  burst.until = at_fraction(ctx, 0.75);
  burst.dup_probability = 0.05;
  burst.max_extra_delay = sim::SimTime::millis(15);
  plan.perturb_bursts.push_back(burst);
  return plan;
}

std::vector<NamedPlan> shipped_scenarios(const ScenarioContext& ctx) {
  return {
      {"replier-crash", replier_crash_plan(ctx)},
      {"partition-heal", subtree_partition_plan(ctx)},
      {"source-pause", source_pause_plan(ctx)},
      {"control-loss", control_loss_plan(ctx)},
      {"crash-recover", crash_recover_plan(ctx)},
      {"dup-jitter", duplication_jitter_plan(ctx)},
  };
}

}  // namespace cesrm::fault
