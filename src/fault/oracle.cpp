#include "fault/oracle.hpp"

#include <algorithm>

#include "cesrm/cesrm_agent.hpp"
#include "cesrm/policy.hpp"
#include "util/check.hpp"

namespace cesrm::fault {

InvariantOracle::InvariantOracle(sim::Simulator& sim,
                                 const net::MulticastTree& tree,
                                 Options options)
    : sim_(sim), tree_(tree), options_(options) {
  CESRM_CHECK(options_.watchdog_period > sim::SimTime::zero());
}

void InvariantOracle::add_member(net::NodeId node,
                                 const srm::SrmAgent* agent) {
  CESRM_CHECK(agent != nullptr);
  nodes_.push_back(node);
  agents_.push_back(agent);
}

void InvariantOracle::note_crash(const ResolvedCrash& crash) {
  crashes_.push_back(crash);
}

void InvariantOracle::start(sim::SimTime horizon) {
  CESRM_CHECK_MSG(!agents_.empty(), "oracle has no members");
  horizon_ = horizon;
  watchdog_ = std::make_unique<sim::Timer>(sim_, [this] { watchdog_fired(); });
  watchdog_->arm(options_.watchdog_period);
}

void InvariantOracle::watchdog_fired() {
  ++watchdog_checks_;
  check_stalls();
  if (sim_.now() + options_.watchdog_period <= horizon_)
    watchdog_->arm(options_.watchdog_period);
}

void InvariantOracle::check_stalls() const {
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    const srm::SrmAgent* agent = agents_[i];
    if (agent->failed()) continue;
    CESRM_CHECK_MSG(agent->stalled_losses() == 0,
                    "liveness: node " << nodes_[i] << " has "
                                      << agent->stalled_losses()
                                      << " stalled losses (no armed request"
                                         " timer) at t=" << sim_.now());
  }
}

void InvariantOracle::finish(net::SeqNo packets_sent,
                             net::NodeId source) const {
  // Crash isolation: no timer callback ever ran on a failed member.
  for (std::size_t i = 0; i < agents_.size(); ++i)
    CESRM_CHECK_MSG(agents_[i]->stats().zombie_timer_fires == 0,
                    "safety: " << agents_[i]->stats().zombie_timer_fires
                               << " timer callbacks fired on crashed node "
                               << nodes_[i]);

  // Exactly-once retransmissions: no member re-executed a repair its
  // durable reply-dedup ledger proves it already served before a crash
  // (non-zero only when the dedup check is disabled — the seeded
  // true-positive the durable test suite drives).
  for (std::size_t i = 0; i < agents_.size(); ++i)
    CESRM_CHECK_MSG(
        agents_[i]->stats().duplicate_retransmissions_served == 0,
        "exactly-once: node "
            << nodes_[i] << " re-executed "
            << agents_[i]->stats().duplicate_retransmissions_served
            << " retransmissions it had already served before its crash");

  check_stalls();

  // Eventual delivery: every live member holds every packet some live
  // member holds. holders[seq] = a live member has (source, seq).
  std::vector<bool> holders(static_cast<std::size_t>(
                                std::max<net::SeqNo>(packets_sent, 0)),
                            false);
  for (const srm::SrmAgent* agent : agents_) {
    if (agent->failed()) continue;
    for (net::SeqNo seq = 0; seq < packets_sent; ++seq)
      if (agent->has_packet(source, seq))
        holders[static_cast<std::size_t>(seq)] = true;
  }
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    const srm::SrmAgent* agent = agents_[i];
    if (agent->failed() || agent->originates(source)) continue;
    for (net::SeqNo seq = 0; seq < packets_sent; ++seq)
      CESRM_CHECK_MSG(agent->has_packet(source, seq) ||
                          !holders[static_cast<std::size_t>(seq)],
                      "liveness: live node "
                          << nodes_[i] << " never recovered packet " << seq
                          << " although a live member holds it");
  }

  // Cache freshness: a live CESRM cache that still elects a dead replier
  // after the SRM fallback has re-seeded it many times over is stale.
  for (const ResolvedCrash& crash : crashes_) {
    const auto member =
        std::find(nodes_.begin(), nodes_.end(), crash.node);
    if (member == nodes_.end()) continue;
    const srm::SrmAgent* dead =
        agents_[static_cast<std::size_t>(member - nodes_.begin())];
    if (!dead->failed()) continue;  // recovered: a legitimate replier again
    for (std::size_t i = 0; i < agents_.size(); ++i) {
      const auto* cesrm_agent =
          dynamic_cast<const cesrm::CesrmAgent*>(agents_[i]);
      if (cesrm_agent == nullptr || cesrm_agent->failed() ||
          cesrm_agent->originates(source))
        continue;
      const auto pair = cesrm::select_pair(
          cesrm_agent->cache(source), cesrm_agent->cesrm_config().policy);
      if (!pair || pair->replier != crash.node) continue;
      std::uint64_t reseeds = 0;
      for (const srm::RecoveryRecord& rec :
           cesrm_agent->stats().recoveries)
        if (rec.source == source && rec.recovered && !rec.expedited &&
            rec.recover_time > crash.at)
          ++reseeds;
      CESRM_CHECK_MSG(
          reseeds <= options_.cache_staleness_bound,
          "cache freshness: node "
              << nodes_[i] << " still elects crashed replier " << crash.node
              << " after " << reseeds << " post-crash SRM recoveries");
    }
  }
}

}  // namespace cesrm::fault
