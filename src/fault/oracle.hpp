// oracle.hpp — liveness/safety oracle for fault-injected runs.
//
// The InvariantOracle turns the §3.3 graceful-degradation claims into
// checkable invariants over one simulation:
//
//  * liveness — recovery of every outstanding loss at a live member keeps
//    making progress. The SRM state machine maintains exactly one armed
//    request timer per outstanding loss, so "some want has no armed
//    timer" (SrmAgent::stalled_losses) is an exact, cheap stall detector;
//    a periodic watchdog checks it throughout the run, catching stalls
//    even though session timers keep the event queue non-empty forever;
//  * safety (crash isolation) — no timer callback ever runs on a crashed
//    member (HostStats::zombie_timer_fires stays zero);
//  * eventual delivery — at the end of the run every live member holds
//    every packet that any live member holds (a permanent loss is
//    legitimate only when every holder crashed);
//  * cache freshness — a live CESRM member's cache may keep electing a
//    crashed replier only transiently: once more than a bounded number of
//    SRM fallback recoveries have completed after the crash (each reply
//    re-seeds the cache with a live pair, §3.3), still naming the dead
//    replier is a violation.
//
// Violations throw util::CheckError naming the invariant, the member, and
// the simulated time, so the harness can prepend its reproduction line.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fault/fault_plan.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "srm/srm_agent.hpp"

namespace cesrm::fault {

class InvariantOracle {
 public:
  struct Options {
    sim::SimTime watchdog_period = sim::SimTime::seconds(5);
    /// A live CESRM cache may keep naming a crashed replier only while at
    /// most this many SRM fallback recoveries have re-seeded it since the
    /// crash (cache capacity plus slack for in-flight replies).
    std::uint64_t cache_staleness_bound = 24;
  };

  InvariantOracle(sim::Simulator& sim, const net::MulticastTree& tree,
                  Options options);
  InvariantOracle(sim::Simulator& sim, const net::MulticastTree& tree)
      : InvariantOracle(sim, tree, Options()) {}

  /// Registers a member to watch; call for the source and every receiver.
  void add_member(net::NodeId node, const srm::SrmAgent* agent);
  /// Tells the oracle about a scheduled crash (from FaultScheduler).
  void note_crash(const ResolvedCrash& crash);

  /// Arms the periodic liveness watchdog, active until `horizon`.
  void start(sim::SimTime horizon);

  /// End-of-run verdict; call after the simulation drains and *before*
  /// SrmAgent::finalize_stats() (which clears the want state the stall
  /// check inspects). `packets_sent` is the number of data packets the
  /// primary `source` actually originated. Throws util::CheckError on any
  /// violated invariant.
  void finish(net::SeqNo packets_sent, net::NodeId source) const;

  std::uint64_t watchdog_checks() const { return watchdog_checks_; }

 private:
  void watchdog_fired();
  void check_stalls() const;

  sim::Simulator& sim_;
  const net::MulticastTree& tree_;
  Options options_;
  std::vector<net::NodeId> nodes_;
  std::vector<const srm::SrmAgent*> agents_;
  std::vector<ResolvedCrash> crashes_;
  std::unique_ptr<sim::Timer> watchdog_;
  sim::SimTime horizon_;
  std::uint64_t watchdog_checks_ = 0;
};

}  // namespace cesrm::fault
