#include "fault/fault_scheduler.hpp"

#include <utility>

#include "obs/trace_recorder.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace cesrm::fault {

FaultScheduler::FaultScheduler(sim::Simulator& sim, net::Network& network,
                               FaultPlan plan, std::uint64_t seed)
    : sim_(sim),
      net_(network),
      plan_(std::move(plan)),
      rng_(util::Rng(seed).fork(0xFA417u)) {
  plan_.validate();
}

void FaultScheduler::add_member(net::NodeId node, srm::SrmAgent* agent) {
  CESRM_CHECK_MSG(!installed_, "add_member after install");
  CESRM_CHECK(agent != nullptr);
  const bool inserted = members_.emplace(node, agent).second;
  CESRM_CHECK_MSG(inserted, "member registered twice");
}

void FaultScheduler::set_crash_hooks(CrashHook on_crash,
                                     CrashHook before_recover) {
  CESRM_CHECK_MSG(!installed_, "set_crash_hooks after install");
  on_crash_ = std::move(on_crash);
  before_recover_ = std::move(before_recover);
}

void FaultScheduler::install(net::DropFn base_drop) {
  CESRM_CHECK_MSG(!installed_, "install called twice");
  installed_ = true;

  const net::MulticastTree& tree = net_.tree();
  for (const auto& crash : plan_.crashes)
    crashes_.push_back(resolve(crash, tree));
  for (const auto& outage : plan_.outages)
    outages_.push_back(resolve(outage, tree));

  for (const auto& crash : crashes_) {
    const auto it = members_.find(crash.node);
    CESRM_CHECK_MSG(it != members_.end(), "crash targets a non-member node");
    srm::SrmAgent* agent = it->second;
    sim_.schedule_at(crash.at, [this, agent, node = crash.node] {
      if (auto* rec = sim_.recorder())
        rec->emit(sim_.now(), obs::EventKind::kFaultApplied, node,
                  net::kInvalidNode, net::kNoSeq, net::kInvalidNode,
                  obs::kFaultCrash);
      agent->fail();
      if (on_crash_) on_crash_(node, *agent);
    });
    if (crash.recovers()) {
      // Draw the post-recovery session offset now so replay does not
      // depend on how many control packets the chains consumed meanwhile.
      const sim::SimTime offset = sim::SimTime::millis(
          rng_.uniform_int(0, 999));
      sim_.schedule_at(
          crash.recover_at, [this, agent, offset, node = crash.node] {
            if (!agent->failed()) {
              // A recover event can race a crash that never applied (or
              // was undone by an overlapping clause's earlier recovery —
              // plans edited by hand do this). Recovering a live member
              // would abort deep in the agent; log and skip instead. The
              // kFaultApplied emit is skipped too: nothing was applied.
              CESRM_LOG_WARN << "fault plan: recover at "
                             << sim_.now().to_seconds() << "s targets node "
                             << node << " which is already live; skipping";
              return;
            }
            if (auto* rec = sim_.recorder())
              rec->emit(sim_.now(), obs::EventKind::kFaultApplied, node,
                        net::kInvalidNode, net::kNoSeq, net::kInvalidNode,
                        obs::kFaultRecover);
            if (before_recover_) before_recover_(node, *agent);
            agent->recover(offset);
          });
    }
  }

  for (const auto& outage : outages_) {
    net::Network* net = &net_;
    sim_.schedule_at(outage.down_at, [this, net, link = outage.link] {
      if (auto* rec = sim_.recorder())
        rec->emit(sim_.now(), obs::EventKind::kFaultApplied, link,
                  net::kInvalidNode, net::kNoSeq, net::kInvalidNode,
                  obs::kFaultLinkDown);
      net->set_link_up(link, false);
    });
    if (outage.heals())
      sim_.schedule_at(outage.up_at, [this, net, link = outage.link] {
        if (auto* rec = sim_.recorder())
          rec->emit(sim_.now(), obs::EventKind::kFaultApplied, link,
                    net::kInvalidNode, net::kNoSeq, net::kInvalidNode,
                    obs::kFaultLinkUp);
        net->set_link_up(link, true);
      });
  }

  control_chains_.reserve(plan_.control_bursts.size());
  for (const auto& burst : plan_.control_bursts)
    control_chains_.push_back(trace::GilbertElliott::from_rate_and_burst(
        burst.loss_rate, burst.mean_burst));

  if (!plan_.control_bursts.empty()) {
    net_.set_drop_fn([this, base = std::move(base_drop)](
                         const net::Packet& pkt, net::NodeId from,
                         net::NodeId to) {
      if (drop_control(pkt)) return true;
      return base && base(pkt, from, to);
    });
  } else {
    net_.set_drop_fn(std::move(base_drop));
  }

  if (!plan_.perturb_bursts.empty())
    net_.set_perturb_fn([this](const net::Packet& pkt, net::NodeId,
                               net::NodeId) { return perturb(pkt); });
}

bool FaultScheduler::drop_control(const net::Packet& pkt) {
  if (pkt.type == net::PacketType::kData) return false;
  const sim::SimTime now = sim_.now();
  for (std::size_t i = 0; i < plan_.control_bursts.size(); ++i) {
    const ControlLossBurst& burst = plan_.control_bursts[i];
    if (now < burst.from || now >= burst.until) continue;
    if (!burst.include_session && pkt.type == net::PacketType::kSession)
      continue;
    if (control_chains_[i].step(rng_)) return true;
  }
  return false;
}

net::Perturbation FaultScheduler::perturb(const net::Packet& pkt) {
  (void)pkt;
  net::Perturbation p;
  const sim::SimTime now = sim_.now();
  for (const PerturbBurst& burst : plan_.perturb_bursts) {
    if (now < burst.from || now >= burst.until) continue;
    if (burst.dup_probability > 0.0 && rng_.bernoulli(burst.dup_probability))
      p.duplicate = true;
    if (burst.max_extra_delay > sim::SimTime::zero())
      p.extra_delay += sim::SimTime::from_seconds(
          rng_.uniform(0.0, burst.max_extra_delay.to_seconds()));
  }
  return p;
}

bool FaultScheduler::source_blocked() const {
  const sim::SimTime now = sim_.now();
  for (const SourcePause& pause : plan_.pauses)
    if (now >= pause.at && now < pause.until) return true;
  const net::NodeId root = net_.tree().root();
  for (const ResolvedCrash& crash : crashes_)
    if (crash.node == root && now >= crash.at && now < crash.recover_at)
      return true;
  return false;
}

sim::SimTime FaultScheduler::source_resume_time() const {
  const sim::SimTime now = sim_.now();
  sim::SimTime resume = now;
  for (const SourcePause& pause : plan_.pauses)
    if (now >= pause.at && now < pause.until && pause.until > resume)
      resume = pause.until;
  const net::NodeId root = net_.tree().root();
  for (const ResolvedCrash& crash : crashes_)
    if (crash.node == root && now >= crash.at && now < crash.recover_at &&
        crash.recover_at > resume)
      resume = crash.recover_at;
  return resume;
}

}  // namespace cesrm::fault
