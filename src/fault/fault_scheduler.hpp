// fault_scheduler.hpp — applies a FaultPlan to one running simulation.
//
// The scheduler is the single point where declarative fault clauses turn
// into concrete simulator events and network hooks: crashes become
// fail()/recover() calls on the registered agents, outages toggle
// administrative link state, control-loss bursts chain a Gilbert–Elliott
// drop decision over the experiment's own loss model, and perturbation
// bursts install the duplication/jitter hook. All randomness (loss chains,
// duplication draws, post-recovery session offsets) comes from a private
// fork of the experiment seed, so a faulted run is exactly as reproducible
// as a fault-free one and independent of runner parallelism.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "fault/fault_plan.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "srm/srm_agent.hpp"
#include "trace/gilbert_elliott.hpp"
#include "util/rng.hpp"

namespace cesrm::fault {

class FaultScheduler {
 public:
  /// `seed` drives the scheduler's private randomness; the same seed
  /// replays the same fault behaviour exactly.
  FaultScheduler(sim::Simulator& sim, net::Network& network, FaultPlan plan,
                 std::uint64_t seed);

  /// Registers the protocol agent attached at `node` (call for the source
  /// and every receiver); must precede install().
  void add_member(net::NodeId node, srm::SrmAgent* agent);

  /// Observer of a crash/recover event's member, invoked around the
  /// agent's own fail()/recover() transition.
  using CrashHook = std::function<void(net::NodeId, srm::SrmAgent&)>;

  /// Installs durable-state hooks (see src/durable): `on_crash` runs right
  /// after a member's fail() (drop the write-behind window, clear volatile
  /// state), `before_recover` right before its recover() (journal replay
  /// into the still-failed agent). Either may be null. The scheduler never
  /// depends on the durable library — it only offers the seams. Must
  /// precede install().
  void set_crash_hooks(CrashHook on_crash, CrashHook before_recover);

  /// Resolves the plan against the network's tree, schedules every fault
  /// event, and installs the drop/perturb hooks. `base_drop` is the
  /// experiment's own loss model, consulted only when no fault clause
  /// already drops the crossing. Call exactly once, before running.
  void install(net::DropFn base_drop);

  /// True while a SourcePause clause or a source crash suppresses
  /// transmission at the current simulated time.
  bool source_blocked() const;

  /// Earliest time transmission may resume given every clause active now;
  /// infinity() for a source crash-stop. Meaningful while source_blocked().
  sim::SimTime source_resume_time() const;

  const FaultPlan& plan() const { return plan_; }
  /// The plan's crashes/outages resolved against the tree (populated by
  /// install()); the oracle keys its liveness bookkeeping off these.
  const std::vector<ResolvedCrash>& crashes() const { return crashes_; }
  const std::vector<ResolvedOutage>& outages() const { return outages_; }

 private:
  bool drop_control(const net::Packet& pkt);
  net::Perturbation perturb(const net::Packet& pkt);

  sim::Simulator& sim_;
  net::Network& net_;
  FaultPlan plan_;
  util::Rng rng_;
  std::map<net::NodeId, srm::SrmAgent*> members_;
  CrashHook on_crash_;
  CrashHook before_recover_;
  std::vector<ResolvedCrash> crashes_;
  std::vector<ResolvedOutage> outages_;
  std::vector<trace::GilbertElliott> control_chains_;  ///< one per burst
  bool installed_ = false;
};

}  // namespace cesrm::fault
