// trace_generator.hpp — synthetic re-creation of the Yajnik et al. traces.
//
// Pipeline per TraceSpec: (1) generate a random multicast tree with the
// published receiver count and depth; (2) assign every link a
// Gilbert–Elliott loss process with a heterogeneous base rate (a few "hot"
// links dominate, mirroring MBone measurements) and a random mean burst
// length; (3) calibrate a global rate multiplier by bisection until the
// total receiver-loss count matches the published "# of Losses" within a
// tolerance; (4) emit the per-receiver binary loss sequences *and* the
// ground-truth per-packet drop links (which the paper could not observe —
// we use them to validate the §4.2 inference).
#pragma once

#include <memory>
#include <vector>

#include "net/ids.hpp"
#include "net/topology.hpp"
#include "trace/catalog.hpp"
#include "trace/loss_trace.hpp"
#include "util/rng.hpp"

namespace cesrm::trace {

/// Knobs for the synthetic loss processes; defaults give MBone-like
/// bursty, spatially heterogeneous losses.
struct GeneratorConfig {
  double min_base_rate = 0.002;   ///< log-uniform base rate lower bound
  double max_base_rate = 0.05;    ///< log-uniform base rate upper bound
  double hot_link_fraction = 0.2; ///< fraction of links boosted ×hot_boost
  double hot_boost = 4.0;
  double min_burst = 1.5;         ///< mean burst length bounds
  double max_burst = 8.0;
  double loss_tolerance = 0.02;   ///< relative calibration tolerance
  int max_calibration_iters = 40;
  int max_branching = 4;          ///< tree bushiness cap
};

/// A generated trace plus ground truth for inference validation.
struct GeneratedTrace {
  std::shared_ptr<LossTrace> loss;
  /// For each packet, the links on which it was dropped (links whose
  /// Gilbert chain was BAD *and* that the packet actually reached).
  /// Indexed by sequence number; empty vector = delivered everywhere.
  std::vector<std::vector<net::LinkId>> true_drop_links;
  /// Per-link loss processes actually used after calibration, indexed by
  /// LinkId (= child node id); entry for the root is unused.
  std::vector<double> link_loss_rate;
  std::vector<double> link_mean_burst;
  /// Calibration diagnostics.
  double rate_multiplier = 1.0;
  int calibration_iters = 0;
};

/// Generates the trace for `spec`. Deterministic in spec.seed.
GeneratedTrace generate_trace(const TraceSpec& spec,
                              const GeneratorConfig& config = {});

/// Convenience: generate Table-1 trace `id` (1-based).
GeneratedTrace generate_table1_trace(int id,
                                     const GeneratorConfig& config = {});

}  // namespace cesrm::trace
