// catalog.hpp — the 14 IP multicast transmission traces of Table 1.
//
// The original Yajnik et al. MBone traces are no longer distributed, so
// the catalog records their *published* characteristics (source name,
// receiver count, tree depth, packet period, packet count, total losses)
// and the trace generator re-creates statistically matching transmissions
// (see DESIGN.md, substitution table). Seeds are fixed so every build of
// the repository works with identical traces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cesrm::trace {

/// One row of Table 1 plus the generation seed.
struct TraceSpec {
  int id = 0;                ///< 1-based index as in Table 1
  std::string name;          ///< source & date, e.g. "RFV960419"
  int receivers = 0;         ///< "# of Rcvrs"
  int depth = 0;             ///< "Tree Depth"
  int period_ms = 0;         ///< "Period (msec)"
  std::int64_t packets = 0;  ///< "# of Pkts"
  std::int64_t losses = 0;   ///< "# of Losses" (summed over receivers)
  std::uint64_t seed = 0;    ///< deterministic generation seed

  /// Transmission duration implied by packets × period.
  double duration_seconds() const {
    return static_cast<double>(packets) *
           static_cast<double>(period_ms) / 1000.0;
  }
  /// Average per-receiver loss rate losses / (packets · receivers).
  double average_loss_rate() const {
    return static_cast<double>(losses) /
           (static_cast<double>(packets) * static_cast<double>(receivers));
  }
};

/// All 14 entries of Table 1, in order.
const std::vector<TraceSpec>& table1_specs();

/// Looks up a spec by 1-based id; CHECK-fails if out of range.
const TraceSpec& table1_spec(int id);

/// Looks up a spec by name; CHECK-fails if unknown.
const TraceSpec& table1_spec_by_name(const std::string& name);

}  // namespace cesrm::trace
