// serialization.hpp — text round-trip for loss traces.
//
// A simple line-oriented format keeps generated traces inspectable and
// diffable. Per-receiver loss sequences are run-length encoded ("731x0
// 5x1 ...") — the sequences are bursty, so RLE keeps files small. The
// ground-truth drop links (synthetic traces only) are optional "truth"
// lines.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace_generator.hpp"

namespace cesrm::trace {

/// Serialized trace bundle: the loss trace and (optionally) ground truth.
struct TraceFile {
  std::shared_ptr<LossTrace> loss;
  std::vector<std::vector<net::LinkId>> true_drop_links;  // may be empty
  bool has_truth() const { return !true_drop_links.empty(); }
};

/// Writes a trace (with ground truth when `truth` is non-null).
void write_trace(std::ostream& os, const LossTrace& trace,
                 const std::vector<std::vector<net::LinkId>>* truth = nullptr);
void save_trace(const std::string& path, const LossTrace& trace,
                const std::vector<std::vector<net::LinkId>>* truth = nullptr);

/// Parses a trace written by write_trace. Throws util::CheckError on
/// malformed input.
TraceFile read_trace(std::istream& is);
TraceFile load_trace(const std::string& path);

}  // namespace cesrm::trace
