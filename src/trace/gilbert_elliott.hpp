// gilbert_elliott.hpp — two-state Markov packet-loss process.
//
// The Gilbert(–Elliott) chain is the standard model of the bursty,
// temporally correlated losses Yajnik et al. measured on the MBone — the
// very phenomenon ("packet loss locality") CESRM exploits. State GOOD
// passes packets; state BAD drops them. The chain is parameterized by the
// stationary loss rate ρ = p_gb / (p_gb + p_bg) and the mean burst length
// B = 1 / p_bg, which are the two quantities the trace generator
// calibrates against Table 1.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace cesrm::trace {

class GilbertElliott {
 public:
  /// Constructs from transition probabilities: p_gb = P(GOOD→BAD),
  /// p_bg = P(BAD→GOOD); both in [0,1].
  GilbertElliott(double p_gb, double p_bg);

  /// Constructs from the stationary loss rate (in [0,1)) and the mean
  /// burst length (>= 1).
  static GilbertElliott from_rate_and_burst(double loss_rate,
                                            double mean_burst);

  /// Advances one packet slot; returns true if that packet is LOST.
  /// The state transition is sampled first, then the state decides.
  bool step(util::Rng& rng);

  bool in_bad_state() const { return bad_; }
  void reset(bool bad = false) { bad_ = bad; }

  double p_gb() const { return p_gb_; }
  double p_bg() const { return p_bg_; }
  /// Stationary loss probability of the chain.
  double stationary_loss_rate() const;
  /// Expected burst length 1/p_bg.
  double mean_burst_length() const;

 private:
  double p_gb_;
  double p_bg_;
  bool bad_ = false;
};

}  // namespace cesrm::trace
