#include "trace/trace_generator.hpp"

#include <algorithm>
#include <cmath>

#include "net/topology_builder.hpp"
#include "trace/gilbert_elliott.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace cesrm::trace {

namespace {

/// Everything fixed once per spec: tree, per-link base parameters, and the
/// per-link RNG seeds (identical across calibration iterations so that the
/// loss count is a stable function of the multiplier).
struct Blueprint {
  std::shared_ptr<const net::MulticastTree> tree;
  std::vector<double> base_rate;   // by LinkId (child node id)
  std::vector<double> mean_burst;  // by LinkId
  std::vector<std::uint64_t> link_seed;
  std::vector<net::NodeId> bfs_order;  // parents before children
};

Blueprint make_blueprint(const TraceSpec& spec, const GeneratorConfig& cfg,
                         util::Rng& rng) {
  Blueprint bp;
  net::TreeShape shape;
  shape.receivers = spec.receivers;
  shape.depth = spec.depth;
  shape.max_branching = cfg.max_branching;
  bp.tree = std::make_shared<net::MulticastTree>(
      net::build_random_tree(shape, rng));

  const auto n = bp.tree->size();
  bp.base_rate.assign(n, 0.0);
  bp.mean_burst.assign(n, 1.0);
  bp.link_seed.assign(n, 0);
  const double ln_lo = std::log(cfg.min_base_rate);
  const double ln_hi = std::log(cfg.max_base_rate);
  for (net::LinkId l : bp.tree->links()) {
    const auto li = static_cast<std::size_t>(l);
    bp.base_rate[li] = std::exp(rng.uniform(ln_lo, ln_hi));
    if (rng.bernoulli(cfg.hot_link_fraction))
      bp.base_rate[li] *= cfg.hot_boost;
    bp.mean_burst[li] = rng.uniform(cfg.min_burst, cfg.max_burst);
    bp.link_seed[li] = rng.next_u64();
  }

  // BFS node order guarantees parents precede children when propagating
  // reachability packet by packet.
  bp.bfs_order.push_back(bp.tree->root());
  for (std::size_t i = 0; i < bp.bfs_order.size(); ++i)
    for (net::NodeId c : bp.tree->children(bp.bfs_order[i]))
      bp.bfs_order.push_back(c);
  return bp;
}

/// Runs the loss processes at rate multiplier `mu`. When `out` is null the
/// pass only counts total receiver losses (calibration); otherwise it
/// fills the LossTrace and ground-truth drop links.
std::uint64_t run_processes(const TraceSpec& spec, const Blueprint& bp,
                            double mu, GeneratedTrace* out) {
  const auto& tree = *bp.tree;
  const auto n = tree.size();

  std::vector<util::Rng> link_rng;
  std::vector<GilbertElliott> chain;
  link_rng.reserve(n);
  chain.reserve(n);
  std::vector<double> final_rate(n, 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    link_rng.emplace_back(bp.link_seed[v]);
    const double rate = std::min(0.95, mu * bp.base_rate[v]);
    final_rate[v] = rate;
    chain.push_back(GilbertElliott::from_rate_and_burst(
        std::max(rate, 0.0), bp.mean_burst[v]));
  }

  std::shared_ptr<LossTrace> loss;
  if (out) {
    loss = std::make_shared<LossTrace>(
        spec.name, bp.tree, sim::SimTime::millis(spec.period_ms),
        spec.packets);
    out->true_drop_links.assign(static_cast<std::size_t>(spec.packets), {});
    out->link_loss_rate = final_rate;
    out->link_mean_burst = bp.mean_burst;
  }

  const auto& receivers = tree.receivers();
  std::vector<std::uint8_t> reached(n, 0);
  std::vector<std::uint8_t> bad(n, 0);
  std::uint64_t total_losses = 0;

  for (net::SeqNo i = 0; i < spec.packets; ++i) {
    // All link states advance every packet slot — link quality evolves in
    // time whether or not traffic reaches the link.
    for (net::LinkId l : tree.links()) {
      const auto li = static_cast<std::size_t>(l);
      bad[li] = chain[li].step(link_rng[li]) ? 1 : 0;
    }
    reached[static_cast<std::size_t>(tree.root())] = 1;
    for (std::size_t oi = 1; oi < bp.bfs_order.size(); ++oi) {
      const net::NodeId v = bp.bfs_order[oi];
      const auto vi = static_cast<std::size_t>(v);
      const auto pi = static_cast<std::size_t>(tree.parent(v));
      if (!reached[pi]) {
        reached[vi] = 0;
        continue;
      }
      if (bad[vi]) {
        reached[vi] = 0;
        if (out) out->true_drop_links[static_cast<std::size_t>(i)].push_back(v);
      } else {
        reached[vi] = 1;
      }
    }
    for (std::size_t r = 0; r < receivers.size(); ++r) {
      if (!reached[static_cast<std::size_t>(receivers[r])]) {
        ++total_losses;
        if (out) loss->set_lost(r, i);
      }
    }
  }

  if (out) out->loss = std::move(loss);
  return total_losses;
}

}  // namespace

GeneratedTrace generate_trace(const TraceSpec& spec,
                              const GeneratorConfig& config) {
  CESRM_CHECK(spec.packets > 0);
  CESRM_CHECK(spec.receivers >= 1);
  util::Rng rng(spec.seed);
  const Blueprint bp = make_blueprint(spec, config, rng);

  const auto target = static_cast<double>(spec.losses);
  const double tol = config.loss_tolerance;

  // Bracket the multiplier: losses(mu) is (statistically) increasing.
  double mu_lo = 1.0;
  double mu_hi = 1.0;
  std::uint64_t losses_at_hi = run_processes(spec, bp, mu_hi, nullptr);
  int iters = 1;
  while (static_cast<double>(losses_at_hi) < target && mu_hi < 4096.0) {
    mu_lo = mu_hi;
    mu_hi *= 2.0;
    losses_at_hi = run_processes(spec, bp, mu_hi, nullptr);
    ++iters;
  }
  std::uint64_t losses_at_lo = run_processes(spec, bp, mu_lo, nullptr);
  ++iters;
  while (static_cast<double>(losses_at_lo) > target && mu_lo > 1.0 / 4096.0) {
    mu_hi = mu_lo;
    losses_at_hi = losses_at_lo;
    mu_lo /= 2.0;
    losses_at_lo = run_processes(spec, bp, mu_lo, nullptr);
    ++iters;
  }

  double best_mu = mu_hi;
  double best_err = std::abs(static_cast<double>(losses_at_hi) - target);
  auto consider = [&](double mu, std::uint64_t losses) {
    const double err = std::abs(static_cast<double>(losses) - target);
    if (err < best_err) {
      best_err = err;
      best_mu = mu;
    }
  };
  consider(mu_lo, losses_at_lo);

  while (iters < config.max_calibration_iters &&
         best_err / target > tol) {
    const double mid = 0.5 * (mu_lo + mu_hi);
    const std::uint64_t losses_mid = run_processes(spec, bp, mid, nullptr);
    ++iters;
    consider(mid, losses_mid);
    if (static_cast<double>(losses_mid) < target)
      mu_lo = mid;
    else
      mu_hi = mid;
    if (mu_hi - mu_lo < 1e-9) break;
  }

  GeneratedTrace out;
  const std::uint64_t final_losses = run_processes(spec, bp, best_mu, &out);
  out.rate_multiplier = best_mu;
  out.calibration_iters = iters;
  CESRM_LOG_INFO << "trace " << spec.name << ": target=" << spec.losses
                 << " generated=" << final_losses << " mu=" << best_mu
                 << " iters=" << iters;
  return out;
}

GeneratedTrace generate_table1_trace(int id, const GeneratorConfig& config) {
  return generate_trace(table1_spec(id), config);
}

}  // namespace cesrm::trace
