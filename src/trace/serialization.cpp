#include "trace/serialization.hpp"

#include <fstream>
#include <sstream>

#include "net/topology_builder.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace cesrm::trace {

namespace {
constexpr const char* kMagic = "# cesrm-trace v1";
}

void write_trace(std::ostream& os, const LossTrace& trace,
                 const std::vector<std::vector<net::LinkId>>* truth) {
  os << kMagic << '\n';
  os << "name " << trace.name() << '\n';
  os << "period_ms " << static_cast<std::int64_t>(trace.period().to_millis())
     << '\n';
  os << "packets " << trace.packet_count() << '\n';
  os << "tree " << trace.tree().to_string() << '\n';
  for (std::size_t r = 0; r < trace.receiver_count(); ++r) {
    os << "loss " << r;
    // Run-length encode the binary sequence.
    net::SeqNo i = 0;
    while (i < trace.packet_count()) {
      const bool v = trace.lost(r, i);
      net::SeqNo j = i;
      while (j < trace.packet_count() && trace.lost(r, j) == v) ++j;
      os << ' ' << (j - i) << 'x' << (v ? 1 : 0);
      i = j;
    }
    os << '\n';
  }
  if (truth) {
    for (std::size_t i = 0; i < truth->size(); ++i) {
      if ((*truth)[i].empty()) continue;
      os << "truth " << i;
      for (net::LinkId l : (*truth)[i]) os << ' ' << l;
      os << '\n';
    }
  }
  os << "end\n";
}

void save_trace(const std::string& path, const LossTrace& trace,
                const std::vector<std::vector<net::LinkId>>* truth) {
  std::ofstream out(path);
  CESRM_CHECK_MSG(out.good(), "cannot open for write: " << path);
  write_trace(out, trace, truth);
  CESRM_CHECK_MSG(out.good(), "write failed: " << path);
}

TraceFile read_trace(std::istream& is) {
  std::string line;
  CESRM_CHECK_MSG(std::getline(is, line) &&
                      util::trim(line) == std::string(kMagic),
                  "bad trace magic");

  std::string name;
  std::int64_t period_ms = -1;
  net::SeqNo packets = -1;
  std::shared_ptr<const net::MulticastTree> tree;
  std::vector<std::pair<std::size_t, std::string>> loss_lines;
  std::vector<std::pair<net::SeqNo, std::vector<net::LinkId>>> truth_lines;
  bool saw_end = false;

  while (std::getline(is, line)) {
    const auto trimmed = std::string(util::trim(line));
    if (trimmed.empty() || trimmed[0] == '#') continue;
    if (trimmed == "end") {
      saw_end = true;
      break;
    }
    const auto sp = trimmed.find(' ');
    CESRM_CHECK_MSG(sp != std::string::npos, "malformed line: " << trimmed);
    const std::string key = trimmed.substr(0, sp);
    const std::string rest = std::string(util::trim(trimmed.substr(sp + 1)));
    if (key == "name") {
      name = rest;
    } else if (key == "period_ms") {
      const auto v = util::parse_int(rest);
      CESRM_CHECK_MSG(v && *v > 0, "bad period_ms: " << rest);
      period_ms = *v;
    } else if (key == "packets") {
      const auto v = util::parse_int(rest);
      CESRM_CHECK_MSG(v && *v > 0, "bad packets: " << rest);
      packets = *v;
    } else if (key == "tree") {
      tree = std::make_shared<net::MulticastTree>(net::parse_tree(rest));
    } else if (key == "loss") {
      const auto sp2 = rest.find(' ');
      CESRM_CHECK_MSG(sp2 != std::string::npos, "malformed loss line");
      const auto ridx = util::parse_int(rest.substr(0, sp2));
      CESRM_CHECK_MSG(ridx && *ridx >= 0, "bad receiver index");
      loss_lines.emplace_back(static_cast<std::size_t>(*ridx),
                              rest.substr(sp2 + 1));
    } else if (key == "truth") {
      const auto toks = util::split_ws(rest);
      CESRM_CHECK_MSG(!toks.empty(), "malformed truth line");
      const auto seq = util::parse_int(toks[0]);
      CESRM_CHECK_MSG(seq && *seq >= 0, "bad truth seq");
      std::vector<net::LinkId> links;
      for (std::size_t t = 1; t < toks.size(); ++t) {
        const auto l = util::parse_int(toks[t]);
        CESRM_CHECK_MSG(l && *l >= 0, "bad truth link");
        links.push_back(static_cast<net::LinkId>(*l));
      }
      truth_lines.emplace_back(*seq, std::move(links));
    } else {
      CESRM_CHECK_MSG(false, "unknown trace key: " << key);
    }
  }
  CESRM_CHECK_MSG(saw_end, "trace missing 'end' terminator");
  CESRM_CHECK_MSG(tree != nullptr, "trace missing tree");
  CESRM_CHECK_MSG(period_ms > 0 && packets > 0, "trace missing header fields");

  TraceFile out;
  out.loss = std::make_shared<LossTrace>(name, tree,
                                         sim::SimTime::millis(period_ms),
                                         packets);
  CESRM_CHECK_MSG(loss_lines.size() == out.loss->receiver_count(),
                  "loss line count mismatch");
  for (const auto& [ridx, rle] : loss_lines) {
    CESRM_CHECK(ridx < out.loss->receiver_count());
    net::SeqNo pos = 0;
    for (const auto& tok : util::split_ws(rle)) {
      const auto x = tok.find('x');
      CESRM_CHECK_MSG(x != std::string::npos, "bad RLE token: " << tok);
      const auto count = util::parse_int(tok.substr(0, x));
      const auto value = util::parse_int(tok.substr(x + 1));
      CESRM_CHECK_MSG(count && *count > 0 && value &&
                          (*value == 0 || *value == 1),
                      "bad RLE token: " << tok);
      if (*value == 1)
        for (net::SeqNo i = 0; i < *count; ++i)
          out.loss->set_lost(ridx, pos + i);
      pos += *count;
    }
    CESRM_CHECK_MSG(pos == packets, "RLE length mismatch for receiver "
                                        << ridx << ": " << pos);
  }
  if (!truth_lines.empty()) {
    out.true_drop_links.assign(static_cast<std::size_t>(packets), {});
    for (auto& [seq, links] : truth_lines) {
      CESRM_CHECK(seq < packets);
      out.true_drop_links[static_cast<std::size_t>(seq)] = std::move(links);
    }
  }
  return out;
}

TraceFile load_trace(const std::string& path) {
  std::ifstream in(path);
  CESRM_CHECK_MSG(in.good(), "cannot open for read: " << path);
  return read_trace(in);
}

}  // namespace cesrm::trace
