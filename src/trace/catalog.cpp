#include "trace/catalog.hpp"

#include "util/check.hpp"

namespace cesrm::trace {

const std::vector<TraceSpec>& table1_specs() {
  // Columns transcribed from Table 1 of the paper. The duration column is
  // implied by packets × period and is reproduced by duration_seconds().
  static const std::vector<TraceSpec> kSpecs = {
      {1, "RFV960419", 12, 6, 80, 45001, 24086, 0xCE5D0001ULL},
      {2, "RFV960508", 10, 5, 40, 148970, 55987, 0xCE5D0002ULL},
      {3, "UCB960424", 15, 7, 40, 93734, 33506, 0xCE5D0003ULL},
      {4, "WRN950919", 8, 4, 80, 17637, 10276, 0xCE5D0004ULL},
      {5, "WRN951030", 10, 4, 80, 57030, 15879, 0xCE5D0005ULL},
      {6, "WRN951101", 9, 5, 80, 41751, 18911, 0xCE5D0006ULL},
      {7, "WRN951113", 12, 5, 80, 46443, 29686, 0xCE5D0007ULL},
      {8, "WRN951114", 10, 4, 80, 38539, 11803, 0xCE5D0008ULL},
      {9, "WRN951128", 9, 4, 80, 44956, 33040, 0xCE5D0009ULL},
      {10, "WRN951204", 11, 5, 80, 45404, 16814, 0xCE5D000AULL},
      {11, "WRN951211", 11, 4, 80, 72519, 44649, 0xCE5D000BULL},
      {12, "WRN951214", 7, 4, 80, 38724, 20872, 0xCE5D000CULL},
      {13, "WRN951216", 8, 3, 80, 50202, 37833, 0xCE5D000DULL},
      {14, "WRN951218", 8, 3, 80, 69994, 43578, 0xCE5D000EULL},
  };
  return kSpecs;
}

const TraceSpec& table1_spec(int id) {
  const auto& specs = table1_specs();
  CESRM_CHECK_MSG(id >= 1 && id <= static_cast<int>(specs.size()),
                  "trace id out of range: " << id);
  return specs[static_cast<std::size_t>(id - 1)];
}

const TraceSpec& table1_spec_by_name(const std::string& name) {
  for (const auto& spec : table1_specs())
    if (spec.name == name) return spec;
  CESRM_CHECK_MSG(false, "unknown trace name: " << name);
  // Unreachable; CHECK above throws.
  return table1_specs().front();
}

}  // namespace cesrm::trace
