#include "trace/loss_trace.hpp"

#include "util/check.hpp"

namespace cesrm::trace {

LossTrace::LossTrace(std::string name,
                     std::shared_ptr<const net::MulticastTree> tree,
                     sim::SimTime period, net::SeqNo packet_count)
    : name_(std::move(name)),
      tree_(std::move(tree)),
      period_(period),
      packet_count_(packet_count) {
  CESRM_CHECK(tree_ != nullptr);
  CESRM_CHECK(period_ > sim::SimTime::zero());
  CESRM_CHECK(packet_count_ > 0);
  receivers_ = tree_->receivers();
  CESRM_CHECK_MSG(receivers_.size() <= 32,
                  "loss patterns are packed into 32-bit masks");
  node_to_ridx_.assign(tree_->size(), kNpos);
  for (std::size_t r = 0; r < receivers_.size(); ++r)
    node_to_ridx_[static_cast<std::size_t>(receivers_[r])] = r;
  loss_.assign(receivers_.size(),
               std::vector<std::uint8_t>(
                   static_cast<std::size_t>(packet_count_), 0));
}

net::NodeId LossTrace::receiver_node(std::size_t ridx) const {
  CESRM_CHECK(ridx < receivers_.size());
  return receivers_[ridx];
}

std::size_t LossTrace::receiver_index(net::NodeId node) const {
  CESRM_CHECK(node >= 0 && static_cast<std::size_t>(node) < node_to_ridx_.size());
  const std::size_t r = node_to_ridx_[static_cast<std::size_t>(node)];
  CESRM_CHECK_MSG(r != kNpos, "node " << node << " is not a receiver");
  return r;
}

void LossTrace::set_lost(std::size_t ridx, net::SeqNo seq, bool lost) {
  CESRM_CHECK(ridx < loss_.size());
  CESRM_CHECK(seq >= 0 && seq < packet_count_);
  loss_[ridx][static_cast<std::size_t>(seq)] = lost ? 1 : 0;
}

bool LossTrace::lost(std::size_t ridx, net::SeqNo seq) const {
  CESRM_DCHECK(ridx < loss_.size());
  CESRM_DCHECK(seq >= 0 && seq < packet_count_);
  return loss_[ridx][static_cast<std::size_t>(seq)] != 0;
}

bool LossTrace::lost_by_node(net::NodeId node, net::SeqNo seq) const {
  return lost(receiver_index(node), seq);
}

LossPattern LossTrace::pattern(net::SeqNo seq) const {
  LossPattern p = 0;
  for (std::size_t r = 0; r < loss_.size(); ++r)
    if (lost(r, seq)) p |= (LossPattern{1} << r);
  return p;
}

std::uint64_t LossTrace::total_losses() const {
  std::uint64_t total = 0;
  for (std::size_t r = 0; r < loss_.size(); ++r)
    total += receiver_losses(r);
  return total;
}

std::uint64_t LossTrace::receiver_losses(std::size_t ridx) const {
  CESRM_CHECK(ridx < loss_.size());
  std::uint64_t n = 0;
  for (auto b : loss_[ridx]) n += b;
  return n;
}

double LossTrace::loss_rate() const {
  const double cells = static_cast<double>(receivers_.size()) *
                       static_cast<double>(packet_count_);
  return cells > 0 ? static_cast<double>(total_losses()) / cells : 0.0;
}

std::uint64_t LossTrace::lossy_packets() const {
  std::uint64_t n = 0;
  for (net::SeqNo i = 0; i < packet_count_; ++i)
    if (pattern(i) != 0) ++n;
  return n;
}

std::map<LossPattern, std::uint64_t> LossTrace::pattern_histogram() const {
  std::map<LossPattern, std::uint64_t> hist;
  for (net::SeqNo i = 0; i < packet_count_; ++i) {
    const LossPattern p = pattern(i);
    if (p != 0) ++hist[p];
  }
  return hist;
}

double LossTrace::pattern_repeat_fraction() const {
  std::uint64_t repeats = 0;
  std::uint64_t transitions = 0;
  LossPattern prev = 0;
  bool have_prev = false;
  for (net::SeqNo i = 0; i < packet_count_; ++i) {
    const LossPattern p = pattern(i);
    if (p == 0) continue;
    if (have_prev) {
      ++transitions;
      if (p == prev) ++repeats;
    }
    prev = p;
    have_prev = true;
  }
  return transitions ? static_cast<double>(repeats) /
                           static_cast<double>(transitions)
                     : 0.0;
}

double LossTrace::mean_burst_length() const {
  std::uint64_t bursts = 0;
  std::uint64_t losses = 0;
  for (const auto& seq : loss_) {
    bool in_burst = false;
    for (auto b : seq) {
      if (b) {
        ++losses;
        if (!in_burst) {
          ++bursts;
          in_burst = true;
        }
      } else {
        in_burst = false;
      }
    }
  }
  return bursts ? static_cast<double>(losses) / static_cast<double>(bursts)
                : 0.0;
}

}  // namespace cesrm::trace
