// loss_trace.hpp — the per-receiver binary loss representation of §4.1.
//
// A LossTrace is the paper's mapping loss : R → (I → {0,1}) bundled with
// the IP multicast tree over which the transmission ran and the constant
// inter-packet period. Receivers are indexed densely 0..R-1 in the order
// of tree->receivers(); helpers convert between NodeId and receiver index.
//
// Loss *patterns* (the subset of receivers that lost a given packet,
// packed into a 32-bit mask — the traces have ≤ 17 receivers) are the unit
// the link-inference machinery of §4.2 operates on.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/ids.hpp"
#include "net/topology.hpp"
#include "sim/time.hpp"

namespace cesrm::trace {

/// Subset of receivers (by dense receiver index) packed into a bitmask.
using LossPattern = std::uint32_t;

class LossTrace {
 public:
  LossTrace(std::string name, std::shared_ptr<const net::MulticastTree> tree,
            sim::SimTime period, net::SeqNo packet_count);

  const std::string& name() const { return name_; }
  const net::MulticastTree& tree() const { return *tree_; }
  std::shared_ptr<const net::MulticastTree> tree_ptr() const { return tree_; }
  sim::SimTime period() const { return period_; }
  net::SeqNo packet_count() const { return packet_count_; }
  sim::SimTime duration() const {
    return period_ * static_cast<std::int64_t>(packet_count_);
  }

  std::size_t receiver_count() const { return receivers_.size(); }
  const std::vector<net::NodeId>& receivers() const { return receivers_; }
  net::NodeId receiver_node(std::size_t ridx) const;
  /// Dense index of a receiver node; CHECK-fails for non-receivers.
  std::size_t receiver_index(net::NodeId node) const;

  /// Marks packet `seq` lost by receiver index `ridx`.
  void set_lost(std::size_t ridx, net::SeqNo seq, bool lost = true);
  bool lost(std::size_t ridx, net::SeqNo seq) const;
  bool lost_by_node(net::NodeId node, net::SeqNo seq) const;

  /// Loss pattern of packet `seq` (bit r set ⇔ receiver index r lost it).
  LossPattern pattern(net::SeqNo seq) const;

  /// Total losses summed over receivers — Table 1's "# of Losses" column.
  std::uint64_t total_losses() const;
  /// Losses of one receiver.
  std::uint64_t receiver_losses(std::size_t ridx) const;
  /// Fraction of (receiver, packet) cells lost.
  double loss_rate() const;

  /// Number of packets lost by at least one receiver.
  std::uint64_t lossy_packets() const;

  /// Frequency of each non-empty loss pattern.
  std::map<LossPattern, std::uint64_t> pattern_histogram() const;

  /// Temporal locality statistic: over consecutive *lossy* packets, the
  /// fraction whose loss pattern equals the previous lossy packet's
  /// pattern. CESRM's premise is that this is high in real transmissions.
  double pattern_repeat_fraction() const;

  /// Mean length of per-receiver loss bursts (runs of consecutive losses).
  double mean_burst_length() const;

 private:
  std::string name_;
  std::shared_ptr<const net::MulticastTree> tree_;
  sim::SimTime period_;
  net::SeqNo packet_count_;
  std::vector<net::NodeId> receivers_;
  std::vector<std::size_t> node_to_ridx_;  // kNpos for non-receivers
  std::vector<std::vector<std::uint8_t>> loss_;  // [ridx][seq]

  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
};

}  // namespace cesrm::trace
