#include "trace/gilbert_elliott.hpp"

#include "util/check.hpp"

namespace cesrm::trace {

GilbertElliott::GilbertElliott(double p_gb, double p_bg)
    : p_gb_(p_gb), p_bg_(p_bg) {
  CESRM_CHECK(p_gb_ >= 0.0 && p_gb_ <= 1.0);
  CESRM_CHECK(p_bg_ >= 0.0 && p_bg_ <= 1.0);
}

GilbertElliott GilbertElliott::from_rate_and_burst(double loss_rate,
                                                   double mean_burst) {
  CESRM_CHECK(loss_rate >= 0.0 && loss_rate < 1.0);
  CESRM_CHECK(mean_burst >= 1.0);
  const double p_bg = 1.0 / mean_burst;
  // ρ = p_gb / (p_gb + p_bg)  ⇒  p_gb = ρ p_bg / (1 − ρ)
  double p_gb = loss_rate * p_bg / (1.0 - loss_rate);
  if (p_gb > 1.0) p_gb = 1.0;
  return GilbertElliott(p_gb, p_bg);
}

bool GilbertElliott::step(util::Rng& rng) {
  if (bad_) {
    if (rng.bernoulli(p_bg_)) bad_ = false;
  } else {
    if (rng.bernoulli(p_gb_)) bad_ = true;
  }
  return bad_;
}

double GilbertElliott::stationary_loss_rate() const {
  const double denom = p_gb_ + p_bg_;
  return denom > 0.0 ? p_gb_ / denom : 0.0;
}

double GilbertElliott::mean_burst_length() const {
  return p_bg_ > 0.0 ? 1.0 / p_bg_ : 0.0;
}

}  // namespace cesrm::trace
