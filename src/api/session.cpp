#include "api/session.hpp"

#include "util/check.hpp"

namespace cesrm::api {

namespace {

/// Agent subclasses that surface packet availability to the session.
/// The protocol machinery is untouched; only the on_packet_available hook
/// is chained into the application upcall path.
class SrmAppAgent final : public srm::SrmAgent {
 public:
  SrmAppAgent(MulticastSession& session, sim::Simulator& sim,
              net::Transport& network, net::NodeId self,
              net::NodeId primary_source, const srm::SrmConfig& config,
              util::Rng rng,
              std::function<void(net::NodeId, net::SeqNo)> on_available)
      : SrmAgent(sim, network, self, primary_source, config, rng),
        on_available_(std::move(on_available)) {
    (void)session;
  }

 protected:
  void on_packet_available(net::NodeId source, net::SeqNo seq) override {
    on_available_(source, seq);
  }

 private:
  std::function<void(net::NodeId, net::SeqNo)> on_available_;
};

class CesrmAppAgent final : public cesrm::CesrmAgent {
 public:
  CesrmAppAgent(sim::Simulator& sim, net::Transport& network, net::NodeId self,
                net::NodeId primary_source, const cesrm::CesrmConfig& config,
                util::Rng rng,
                std::function<void(net::NodeId, net::SeqNo)> on_available)
      : CesrmAgent(sim, network, self, primary_source, config, rng),
        on_available_(std::move(on_available)) {}

 protected:
  void on_packet_available(net::NodeId source, net::SeqNo seq) override {
    CesrmAgent::on_packet_available(source, seq);
    on_available_(source, seq);
  }

 private:
  std::function<void(net::NodeId, net::SeqNo)> on_available_;
};

}  // namespace

// ---------------------------------------------------------------------------
// MulticastSession
// ---------------------------------------------------------------------------

MulticastSession::MulticastSession(MulticastGroup& group, net::NodeId node,
                                   const SessionConfig& config)
    : group_(&group), config_(config) {
  auto on_available = [this](net::NodeId source, net::SeqNo seq) {
    this->on_available(source, seq);
  };
  util::Rng rng = group.rng_.fork(static_cast<std::uint64_t>(node) + 1);
  const net::NodeId primary = group.tree().root();
  if (config.protocol == Protocol::kCesrm) {
    agent_ = std::make_unique<CesrmAppAgent>(group.sim_, group.network_, node,
                                             primary, config.cesrm, rng,
                                             on_available);
  } else {
    agent_ = std::make_unique<SrmAppAgent>(*this, group.sim_, group.network_,
                                           node, primary, config.cesrm.srm,
                                           rng, on_available);
  }
  agent_->start_session(sim::SimTime::millis(
      group.rng_.uniform_int(0, config.cesrm.srm.session_period.ns() /
                                    1000000 -
                                1)));
}

void MulticastSession::set_delivery_handler(DeliveryHandler handler) {
  handler_ = std::move(handler);
}

net::SeqNo MulticastSession::send() {
  const net::SeqNo seq = next_send_++;
  agent_->send_data(seq);
  return seq;
}

void MulticastSession::fail() { agent_->fail(); }

net::NodeId MulticastSession::node() const { return agent_->node(); }

bool MulticastSession::has(net::NodeId source, net::SeqNo seq) const {
  return agent_->has_packet(source, seq);
}

const srm::HostStats& MulticastSession::transport_stats() const {
  return agent_->stats();
}

cesrm::CacheStats MulticastSession::cache_stats() const {
  if (const auto* agent =
          dynamic_cast<const cesrm::CesrmAgent*>(agent_.get()))
    return agent->cache_stats();
  return {};
}

void MulticastSession::on_available(net::NodeId source, net::SeqNo seq) {
  if (!config_.ordered_delivery) {
    deliver(source, seq);
    return;
  }
  // Ordered mode: the agent stores every packet, so the holdback buffer is
  // implicit — release the contiguous prefix.
  net::SeqNo& next = next_expected_.try_emplace(source, 0).first->second;
  while (agent_->has_packet(source, next)) {
    deliver(source, next);
    ++next;
  }
}

void MulticastSession::deliver(net::NodeId source, net::SeqNo seq) {
  ++delivered_count_;
  if (!handler_) return;
  Adu adu;
  adu.source = source;
  adu.seq = seq;
  adu.delivered_at = group_->sim_.now();
  handler_(adu);
}

// ---------------------------------------------------------------------------
// MulticastGroup
// ---------------------------------------------------------------------------

MulticastGroup::MulticastGroup(
    std::shared_ptr<const net::MulticastTree> tree,
    net::NetworkConfig net_config)
    : tree_(std::move(tree)), network_(sim_, *tree_, net_config) {
  CESRM_CHECK(tree_ != nullptr);
}

MulticastGroup::~MulticastGroup() = default;

MulticastSession& MulticastGroup::join(net::NodeId node,
                                       SessionConfig config) {
  CESRM_CHECK_MSG(members_.count(node) == 0,
                  "node " << node << " already joined");
  // Fail fast with a friendly message instead of silently degrading: api
  // sessions have no loss ground truth to back a CacheSideInfo, so the
  // policies that need one cannot do better than recency here.
  CESRM_CHECK_MSG(
      config.protocol != Protocol::kCesrm ||
          !cesrm::cache_policy_needs_side_info(config.cesrm.cache.policy) ||
          config.cesrm.cache.side_info != nullptr,
      "cache policy '"
          << cesrm::cache_policy_name(config.cesrm.cache.policy)
          << "' needs cache side info, which api sessions do not provide"
          << " (policies needing side info: "
          << cesrm::cache_policies_needing_side_info() << ")");
  auto session = std::unique_ptr<MulticastSession>(
      new MulticastSession(*this, node, config));
  auto [it, inserted] = members_.emplace(node, std::move(session));
  CESRM_CHECK(inserted);
  return *it->second;
}

void MulticastGroup::set_drop_fn(net::DropFn fn) {
  network_.set_drop_fn(std::move(fn));
}

void MulticastGroup::run_for(sim::SimTime duration) {
  sim_.run_until(sim_.now() + duration);
}

void MulticastGroup::run_until(sim::SimTime when) { sim_.run_until(when); }

MulticastSession& MulticastGroup::at(net::NodeId node) {
  const auto it = members_.find(node);
  CESRM_CHECK_MSG(it != members_.end(), "no member at node " << node);
  return *it->second;
}

}  // namespace cesrm::api
