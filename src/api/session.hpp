// session.hpp — the application-facing reliable-multicast API.
//
// SRM was designed as "a reliable multicast framework for light-weight
// sessions and application level framing" (ALF): the transport recovers
// named application data units and hands them to the application as they
// arrive, in any order, letting the application decide what order means.
// This facade packages the protocol agents behind that model:
//
//   MulticastGroup group(tree);                 // one simulated session
//   auto& alice = group.join(nodeA);            // members join
//   auto& bob   = group.join(nodeB);
//   bob.set_delivery_handler([](Adu adu) { ... });
//   alice.send();                               // originate ADUs
//   group.run_for(sim::SimTime::seconds(10));
//
// Each member originates its own stream (stream id = node id) and receives
// everyone else's — the many-to-many model of SRM's whiteboard. Delivery
// is ALF-style out of order by default; ordered_delivery enables a
// per-stream holdback buffer that releases ADUs in sequence order.
//
// The facade is simulation-first (it owns the Simulator and Network), but
// the session surface — join / send / delivery handler / delivered — is
// the API a native transport would expose.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "cesrm/cesrm_agent.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "protocol.hpp"
#include "sim/simulator.hpp"
#include "srm/srm_agent.hpp"

namespace cesrm::api {

struct SessionConfig {
  /// Which protocol recovers losses for this member (shared enum — the
  /// same selector the experiment harness uses).
  Protocol protocol = Protocol::kCesrm;
  cesrm::CesrmConfig cesrm;  ///< cesrm.srm also configures SRM members
  /// When true, ADUs of each stream are delivered in sequence order
  /// (holdback buffer); default is ALF-style immediate delivery.
  bool ordered_delivery = false;
};

/// One delivered application data unit.
struct Adu {
  net::NodeId source = net::kInvalidNode;  ///< originating member
  net::SeqNo seq = net::kNoSeq;
  sim::SimTime delivered_at;
};

class MulticastGroup;

/// A member's handle on the reliable multicast session.
class MulticastSession {
 public:
  using DeliveryHandler = std::function<void(const Adu&)>;

  /// Registers the upcall invoked for every delivered ADU. With ordered
  /// delivery the upcall sees each stream's ADUs in sequence order.
  void set_delivery_handler(DeliveryHandler handler);

  /// Originates the next ADU on this member's stream; returns its
  /// sequence number. The member's own ADUs are not delivered to itself.
  net::SeqNo send();

  /// Crash-stops this member (it stops receiving, repairing, and sending).
  void fail();

  net::NodeId node() const;
  /// True once the ADU is locally available (delivered or held back).
  bool has(net::NodeId source, net::SeqNo seq) const;
  /// Number of ADUs delivered to the application so far.
  std::uint64_t delivered_count() const { return delivered_count_; }
  /// Protocol-level statistics of this member.
  const srm::HostStats& transport_stats() const;
  /// CESRM cache-effectiveness counters summed over this member's
  /// per-source requestor/replier caches (all zero for SRM members).
  cesrm::CacheStats cache_stats() const;

 private:
  friend class MulticastGroup;
  MulticastSession(MulticastGroup& group, net::NodeId node,
                   const SessionConfig& config);

  void on_available(net::NodeId source, net::SeqNo seq);
  void deliver(net::NodeId source, net::SeqNo seq);

  MulticastGroup* group_;
  SessionConfig config_;
  std::unique_ptr<srm::SrmAgent> agent_;  // SrmAgent or CesrmAgent
  DeliveryHandler handler_;
  net::SeqNo next_send_ = 0;
  std::uint64_t delivered_count_ = 0;
  /// Ordered mode: next sequence expected per stream.
  std::map<net::NodeId, net::SeqNo> next_expected_;
};

/// The simulated session: topology, network, clock, and members.
class MulticastGroup {
 public:
  /// `tree`'s root and leaves are the joinable member positions.
  explicit MulticastGroup(std::shared_ptr<const net::MulticastTree> tree,
                          net::NetworkConfig net_config = {});
  ~MulticastGroup();

  /// Joins a member at `node` (the tree root or a leaf). Session messages
  /// start immediately, staggered per member.
  MulticastSession& join(net::NodeId node, SessionConfig config = {});

  /// Installs a per-link-crossing loss function (see net::DropFn);
  /// typically a Gilbert–Elliott process per link.
  void set_drop_fn(net::DropFn fn);

  sim::Simulator& simulator() { return sim_; }
  net::Transport& network() { return network_; }
  const net::MulticastTree& tree() const { return *tree_; }

  void run_for(sim::SimTime duration);
  void run_until(sim::SimTime when);

  MulticastSession& at(net::NodeId node);

 private:
  friend class MulticastSession;

  std::shared_ptr<const net::MulticastTree> tree_;
  sim::Simulator sim_;
  net::Network network_;
  util::Rng rng_{0xA11CE5EEDULL};
  std::map<net::NodeId, std::unique_ptr<MulticastSession>> members_;
};

}  // namespace cesrm::api
