#include "obs/sketch.hpp"

#include <algorithm>
#include <atomic>
#include <bit>

#include "util/check.hpp"

namespace cesrm::obs {

namespace {

// Live/peak sketch bytes across the process. Atomic because the parallel
// runner folds many per-run sketches concurrently; the peak update is a
// CAS loop so concurrent allocations never lose a high-water mark.
std::atomic<std::uint64_t> g_live{0};
std::atomic<std::uint64_t> g_peak{0};

void note_alloc(std::uint64_t bytes) {
  const std::uint64_t live =
      g_live.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  std::uint64_t peak = g_peak.load(std::memory_order_relaxed);
  while (live > peak &&
         !g_peak.compare_exchange_weak(peak, live, std::memory_order_relaxed)) {
  }
}

void note_free(std::uint64_t bytes) {
  g_live.fetch_sub(bytes, std::memory_order_relaxed);
}

constexpr std::uint64_t kHistogramBytes =
    LogHistogram::kBucketCount * sizeof(std::uint64_t);

// Conservative per-entry footprint of the bounded Space-Saving map (entry
// payload + red-black node overhead); charged for the full capacity up
// front since the map never grows beyond it.
constexpr std::uint64_t kTopKEntryBytes = sizeof(TopK::Entry) + 48;

}  // namespace

std::uint64_t sketch_live_bytes() {
  return g_live.load(std::memory_order_relaxed);
}
std::uint64_t sketch_peak_bytes() {
  return g_peak.load(std::memory_order_relaxed);
}
void sketch_reset_peak() {
  g_peak.store(g_live.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
}

// ------------------------------------------------------------ LogHistogram --

LogHistogram::LogHistogram() : counts_(kBucketCount, 0) {
  note_alloc(kHistogramBytes);
}

LogHistogram::~LogHistogram() { note_free(kHistogramBytes); }

LogHistogram::LogHistogram(const LogHistogram& other)
    : counts_(other.counts_),
      total_(other.total_),
      min_(other.min_),
      max_(other.max_) {
  note_alloc(kHistogramBytes);
}

LogHistogram& LogHistogram::operator=(const LogHistogram& other) {
  counts_ = other.counts_;
  total_ = other.total_;
  min_ = other.min_;
  max_ = other.max_;
  return *this;
}

std::size_t LogHistogram::index_of(std::int64_t v) {
  if (v < kSub) return static_cast<std::size_t>(v < 0 ? 0 : v);
  const int e = 63 - std::countl_zero(static_cast<std::uint64_t>(v));
  const std::int64_t offset = (v >> (e - kSubBits)) - kSub;
  return static_cast<std::size_t>(kSub) +
         static_cast<std::size_t>(e - kSubBits) *
             static_cast<std::size_t>(kSub) +
         static_cast<std::size_t>(offset);
}

void LogHistogram::add(std::int64_t v) {
  if (v < 0) v = 0;
  ++counts_[index_of(v)];
  if (total_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++total_;
}

void LogHistogram::merge(const LogHistogram& other) {
  for (std::size_t i = 0; i < kBucketCount; ++i) counts_[i] += other.counts_[i];
  if (other.total_ > 0) {
    min_ = total_ ? std::min(min_, other.min_) : other.min_;
    max_ = total_ ? std::max(max_, other.max_) : other.max_;
  }
  total_ += other.total_;
}

std::int64_t LogHistogram::bucket_lower(std::int64_t v) const {
  const std::size_t index = index_of(v < 0 ? 0 : v);
  if (index < static_cast<std::size_t>(kSub))
    return static_cast<std::int64_t>(index);
  const std::size_t rest = index - static_cast<std::size_t>(kSub);
  const int e = kSubBits + static_cast<int>(rest / static_cast<std::size_t>(kSub));
  const std::int64_t offset =
      static_cast<std::int64_t>(rest % static_cast<std::size_t>(kSub));
  return (kSub + offset) << (e - kSubBits);
}

std::int64_t LogHistogram::bucket_width(std::int64_t v) const {
  if (v < kSub) return 1;
  const int e = 63 - std::countl_zero(static_cast<std::uint64_t>(v));
  return std::int64_t{1} << (e - kSubBits);
}

std::int64_t LogHistogram::quantile(double q) const {
  if (total_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  std::uint64_t target =
      static_cast<std::uint64_t>(q * static_cast<double>(total_) + 0.5);
  if (target < 1) target = 1;
  if (target > total_) target = total_;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    cum += counts_[i];
    if (cum >= target) {
      if (i < static_cast<std::size_t>(kSub))
        return static_cast<std::int64_t>(i);
      const std::size_t rest = i - static_cast<std::size_t>(kSub);
      const int e =
          kSubBits + static_cast<int>(rest / static_cast<std::size_t>(kSub));
      const std::int64_t offset =
          static_cast<std::int64_t>(rest % static_cast<std::size_t>(kSub));
      return (kSub + offset) << (e - kSubBits);
    }
  }
  return max_;
}

void LogHistogram::to_json(std::ostream& os) const {
  os << "{\"count\":" << total_ << ",\"min\":" << min() << ",\"max\":" << max()
     << ",\"p50\":" << quantile(0.50) << ",\"p90\":" << quantile(0.90)
     << ",\"p99\":" << quantile(0.99) << "}";
}

// ------------------------------------------------------------------- TopK --

TopK::TopK(std::size_t k) : k_(k) {
  CESRM_CHECK_MSG(k >= 1, "TopK capacity must be at least 1");
  note_alloc(k_ * kTopKEntryBytes);
}

TopK::~TopK() { note_free(k_ * kTopKEntryBytes); }

void TopK::offer(std::int64_t key, std::uint64_t weight) {
  if (auto it = entries_.find(key); it != entries_.end()) {
    it->second.count += weight;
    return;
  }
  if (entries_.size() < k_) {
    entries_.emplace(key, Entry{key, weight, 0});
    return;
  }
  // Space-Saving eviction: the minimum count loses; ties evict the largest
  // key so the surviving set is a deterministic function of the offers.
  auto victim = entries_.begin();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->second.count < victim->second.count ||
        (it->second.count == victim->second.count &&
         it->first > victim->first))
      victim = it;
  }
  const std::uint64_t inherited = victim->second.count;
  entries_.erase(victim);
  entries_.emplace(key, Entry{key, inherited + weight, inherited});
}

void TopK::merge(const TopK& other) {
  // std::map iterates in ascending key order — the deterministic offer
  // order the class contract promises.
  for (const auto& [key, entry] : other.entries_) offer(key, entry.count);
}

std::vector<TopK::Entry> TopK::ranked() const {
  std::vector<Entry> out;
  out.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) out.push_back(entry);
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.key < b.key;
  });
  return out;
}

void TopK::to_json(std::ostream& os) const {
  os << '[';
  bool first = true;
  for (const Entry& e : ranked()) {
    if (!first) os << ',';
    first = false;
    os << "{\"key\":" << e.key << ",\"count\":" << e.count
       << ",\"error\":" << e.error << "}";
  }
  os << ']';
}

// -------------------------------------------------------- StreamingSketch --

void StreamingSketch::fold(const TraceEvent& e) {
  ++events_folded;
  switch (e.kind) {
    case EventKind::kExpSuccess:
      expedited_latency_ns.add(e.aux);
      recovery_latency_ns.add(e.aux);
      break;
    case EventKind::kExpFallback:
    case EventKind::kRecovered:
      recovery_latency_ns.add(e.aux);
      break;
    case EventKind::kRepairSent:
      reply_wait_ns.add(e.aux);
      break;
    case EventKind::kPacketDropped:
      drop_links.offer(e.node);
      break;
    case EventKind::kLossDetected:
      loss_nodes.offer(e.node);
      break;
    default:
      break;
  }
}

void StreamingSketch::merge(const StreamingSketch& other) {
  recovery_latency_ns.merge(other.recovery_latency_ns);
  expedited_latency_ns.merge(other.expedited_latency_ns);
  reply_wait_ns.merge(other.reply_wait_ns);
  drop_links.merge(other.drop_links);
  loss_nodes.merge(other.loss_nodes);
  events_folded += other.events_folded;
}

void StreamingSketch::to_json(std::ostream& os) const {
  os << "{\"events_folded\":" << events_folded << ",\"recovery_latency_ns\":";
  recovery_latency_ns.to_json(os);
  os << ",\"expedited_latency_ns\":";
  expedited_latency_ns.to_json(os);
  os << ",\"reply_wait_ns\":";
  reply_wait_ns.to_json(os);
  os << ",\"drop_links\":";
  drop_links.to_json(os);
  os << ",\"loss_nodes\":";
  loss_nodes.to_json(os);
  os << "}";
}

}  // namespace cesrm::obs
