// sketch.hpp — constant-memory streaming telemetry (ObsConfig::stream).
//
// Full event capture is O(events): a Table-1 run records hundreds of
// thousands of TraceEvents, and the ROADMAP's 10⁵–10⁶-receiver sweeps
// would record billions. Streaming mode folds each event into fixed-size
// sketches instead and discards it:
//
//  * LogHistogram — an HDR-style log-bucketed histogram over non-negative
//    int64 values (nanosecond latencies). 32 linear sub-buckets per
//    power-of-two octave bound the relative quantile error at 1/32 per
//    bucket; the geometry is fixed, so cross-job merges are plain
//    bucket-wise adds and the merged result is independent of merge order.
//  * TopK — deterministic Space-Saving heavy hitters (per-link drop
//    counts). Evictions and the reported ranking break ties by key, so a
//    sweep's merged top-k (merged strictly in job order, like
//    MetricsRegistry) is byte-identical for any --jobs value.
//  * StreamingSketch — the per-run bundle the TraceRecorder folds into:
//    recovery-latency histograms (all / expedited), per-link dropped-
//    packet heavy hitters, per-node loss heavy hitters.
//
// Every container tracks its allocation through sketch_note_alloc(), so
// tests can assert the O(buckets) footprint: sketch_peak_bytes() is the
// high-water mark of live sketch memory, independent of how many events
// streamed through.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <vector>

#include "obs/events.hpp"

namespace cesrm::obs {

/// Live/peak sketch allocation accounting (process-global, test hook).
std::uint64_t sketch_live_bytes();
std::uint64_t sketch_peak_bytes();
void sketch_reset_peak();

/// Log-bucketed histogram over values >= 0 (negatives clamp to 0).
/// Geometry: values below 32 get exact unit buckets; above, each
/// power-of-two octave splits into 32 linear sub-buckets, so any quantile
/// is pinned to within one bucket width (<= 1/32 relative).
class LogHistogram {
 public:
  static constexpr int kSubBits = 5;
  static constexpr std::int64_t kSub = std::int64_t{1} << kSubBits;
  /// Octaves [kSubBits, 62] of kSub sub-buckets each, on top of kSub unit
  /// buckets for values below kSub.
  static constexpr std::size_t kBucketCount =
      static_cast<std::size_t>(kSub) * (1 + (62 - kSubBits + 1));

  LogHistogram();
  ~LogHistogram();
  LogHistogram(const LogHistogram& other);
  LogHistogram& operator=(const LogHistogram& other);

  void add(std::int64_t v);
  /// Bucket-wise accumulation (fixed shared geometry — always mergeable).
  void merge(const LogHistogram& other);

  std::uint64_t total() const { return total_; }
  std::int64_t min() const { return total_ ? min_ : 0; }
  std::int64_t max() const { return total_ ? max_ : 0; }

  /// The lower edge of the bucket holding the q-quantile (q in [0, 1]);
  /// 0 when empty. Exact values land within bucket_width() of this.
  std::int64_t quantile(double q) const;
  /// Inclusive value range [lower, upper) of the bucket holding `v`.
  std::int64_t bucket_lower(std::int64_t v) const;
  std::int64_t bucket_width(std::int64_t v) const;

  /// {"count":..,"min":..,"max":..,"p50":..,"p90":..,"p99":..} — quantile
  /// values are bucket lower edges (deterministic, merge-order free).
  void to_json(std::ostream& os) const;

 private:
  static std::size_t index_of(std::int64_t v);

  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

/// Deterministic Space-Saving top-k: at most `k` tracked keys; when full,
/// a new key evicts the minimum-count entry (largest key on ties) and
/// inherits its count as over-estimation error. Counts are exact while
/// fewer than k distinct keys have been offered.
class TopK {
 public:
  explicit TopK(std::size_t k);
  ~TopK();

  void offer(std::int64_t key, std::uint64_t weight = 1);
  /// Offers every entry of `other` in ascending key order — the same
  /// deterministic result regardless of how jobs were partitioned, as
  /// long as merges happen in job order.
  void merge(const TopK& other);

  struct Entry {
    std::int64_t key = 0;
    std::uint64_t count = 0;  ///< upper bound: true count + error
    std::uint64_t error = 0;  ///< max over-estimation inherited on evict
  };
  /// Entries by descending count, ascending key on ties.
  std::vector<Entry> ranked() const;
  std::size_t capacity() const { return k_; }
  std::size_t size() const { return entries_.size(); }

  /// [{"key":..,"count":..,"error":..}, ...] in ranked order.
  void to_json(std::ostream& os) const;

 private:
  std::size_t k_;
  std::map<std::int64_t, Entry> entries_;  ///< by key
};

/// Everything streaming mode keeps about a run: O(buckets + k), not
/// O(events). Latencies come off the closing events' aux field (the
/// recovery latency stamped by the agent), so no per-loss state is held.
struct StreamingSketch {
  LogHistogram recovery_latency_ns;   ///< all recovered losses
  LogHistogram expedited_latency_ns;  ///< the kExpSuccess subset
  LogHistogram reply_wait_ns;         ///< kRepairSent scheduling waits
  TopK drop_links{16};                ///< kPacketDropped, key = link child
  TopK loss_nodes{16};                ///< kLossDetected, key = detecting node
  std::uint64_t events_folded = 0;

  void fold(const TraceEvent& e);
  /// Cross-job accumulation; call strictly in job order.
  void merge(const StreamingSketch& other);
  /// One JSON object with a section per sketch.
  void to_json(std::ostream& os) const;
};

}  // namespace cesrm::obs
