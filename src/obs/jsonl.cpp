#include "obs/jsonl.hpp"

#include <cmath>
#include <cstdlib>
#include <istream>

namespace cesrm::obs {

bool parse_event_kind(const std::string& name, EventKind& out) {
  for (std::size_t k = 0; k < kEventKindCount; ++k) {
    const auto kind = static_cast<EventKind>(k);
    if (name == event_kind_name(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

namespace {

/// Cursor over one line. The grammar is the exporter's output: a flat
/// object of "key":value pairs where values are JSON numbers or a quoted
/// kind name — no nesting, no escapes (kind names are snake_case ASCII).
struct LineCursor {
  const std::string& line;
  std::size_t pos = 0;
  std::string error;

  bool fail(std::string msg) {
    if (error.empty()) error = std::move(msg);
    return false;
  }
  void skip_ws() {
    while (pos < line.size() &&
           (line[pos] == ' ' || line[pos] == '\t'))
      ++pos;
  }
  bool expect(char c) {
    skip_ws();
    if (pos >= line.size() || line[pos] != c)
      return fail(std::string("expected '") + c + "'");
    ++pos;
    return true;
  }
  bool peek(char c) {
    skip_ws();
    return pos < line.size() && line[pos] == c;
  }
  bool read_string(std::string& out) {
    if (!expect('"')) return false;
    out.clear();
    while (pos < line.size() && line[pos] != '"') {
      if (line[pos] == '\\') return fail("escapes not used by the exporter");
      out += line[pos++];
    }
    return expect('"');
  }
  bool read_number(double& out) {
    skip_ws();
    const char* begin = line.c_str() + pos;
    char* end = nullptr;
    out = std::strtod(begin, &end);
    if (end == begin) return fail("expected a number");
    pos += static_cast<std::size_t>(end - begin);
    return true;
  }
};

bool parse_line(const std::string& line, TraceEvent& e, std::string& error) {
  LineCursor c{line};
  if (!c.expect('{')) {
    error = c.error;
    return false;
  }
  bool saw_ts = false, saw_kind = false;
  bool first = true;
  while (!c.peek('}')) {
    if (!first && !c.expect(',')) break;
    first = false;
    std::string key;
    if (!c.read_string(key) || !c.expect(':')) break;
    if (key == "kind") {
      std::string name;
      if (!c.read_string(name)) break;
      if (!parse_event_kind(name, e.kind)) {
        c.fail("unknown event kind \"" + name + "\"");
        break;
      }
      saw_kind = true;
      continue;
    }
    double value = 0;
    if (!c.read_number(value)) break;
    if (key == "ts_us") {
      // json_double's 17 digits make this exact for sim-scale timestamps.
      e.at = sim::SimTime::nanos(std::llround(value * 1000.0));
      saw_ts = true;
    } else if (key == "node") {
      e.node = static_cast<net::NodeId>(value);
    } else if (key == "source") {
      e.source = static_cast<net::NodeId>(value);
    } else if (key == "seq") {
      e.seq = static_cast<net::SeqNo>(value);
    } else if (key == "peer") {
      e.peer = static_cast<net::NodeId>(value);
    } else if (key == "detail") {
      e.detail = static_cast<std::int64_t>(value);
    } else if (key == "aux") {
      e.aux = static_cast<std::int64_t>(value);
    } else {
      c.fail("unknown key \"" + key + "\"");
      break;
    }
  }
  if (c.error.empty()) {
    c.expect('}');
    if (c.error.empty() && !saw_ts) c.fail("missing \"ts_us\"");
    if (c.error.empty() && !saw_kind) c.fail("missing \"kind\"");
  }
  error = c.error;
  return error.empty();
}

}  // namespace

JsonlReadResult read_events_jsonl(std::istream& is) {
  JsonlReadResult result;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    TraceEvent e;
    std::string error;
    if (!parse_line(line, e, error)) {
      result.ok = false;
      result.error_line = line_no;
      result.error = error;
      result.events.clear();
      return result;
    }
    result.events.push_back(e);
  }
  return result;
}

}  // namespace cesrm::obs
