#include "obs/metrics.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/json.hpp"

namespace cesrm::obs {

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) {
    auto [it, inserted] = gauges.emplace(name, v);
    if (!inserted) it->second = std::max(it->second, v);
  }
  for (const auto& [name, h] : other.histograms) {
    auto it = histograms.find(name);
    if (it == histograms.end()) {
      histograms.emplace(name, h);
    } else {
      it->second.merge(h);
    }
  }
}

void MetricsSnapshot::to_json(std::ostream& os) const {
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) os << ',';
    first = false;
    util::json_escape(os, name);
    os << ':' << v;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) os << ',';
    first = false;
    util::json_escape(os, name);
    os << ':';
    util::json_double(os, v);
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) os << ',';
    first = false;
    util::json_escape(os, name);
    os << ':' << h.to_json();
  }
  os << "}}";
}

void MetricsRegistry::add(const std::string& name, std::uint64_t delta) {
  snap_.counters[name] += delta;
}

void MetricsRegistry::gauge_max(const std::string& name, double v) {
  auto [it, inserted] = snap_.gauges.emplace(name, v);
  if (!inserted) it->second = std::max(it->second, v);
}

util::Histogram& MetricsRegistry::histogram(const std::string& name, double lo,
                                            double hi, std::size_t buckets) {
  auto it = snap_.histograms.find(name);
  if (it == snap_.histograms.end())
    it = snap_.histograms.emplace(name, util::Histogram(lo, hi, buckets))
             .first;
  CESRM_CHECK_MSG(it->second.same_grid(util::Histogram(lo, hi, buckets)),
                  "histogram '" << name << "' re-registered with a new grid");
  return it->second;
}

}  // namespace cesrm::obs
