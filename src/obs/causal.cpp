#include "obs/causal.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <tuple>

#include "util/json.hpp"

namespace cesrm::obs {

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kBackoff: return "backoff";
    case Phase::kRequestWait: return "request_wait";
    case Phase::kReplyWait: return "reply_wait";
    case Phase::kReorderWait: return "reorder_wait";
    case Phase::kExpTransit: return "exp_transit";
    case Phase::kRepairTransit: return "repair_transit";
    case Phase::kCount: break;
  }
  return "unknown";
}

const char* anomaly_kind_name(AnomalyKind kind) {
  switch (kind) {
    case AnomalyKind::kRequestImplosion: return "request_implosion";
    case AnomalyKind::kReplyImplosion: return "reply_implosion";
    case AnomalyKind::kZombieRecovery: return "zombie_recovery";
    case AnomalyKind::kCacheInversion: return "cache_inversion";
    case AnomalyKind::kTailOutlier: return "tail_outlier";
    case AnomalyKind::kCount: break;
  }
  return "unknown";
}

namespace {

using LossKey = std::tuple<net::NodeId, net::NodeId, net::SeqNo>;
using GroupKey = std::pair<net::NodeId, net::SeqNo>;  // (source, seq)

/// Sim streams are emitted in time order, so these stay sorted by
/// construction — boundary lookups are binary searches.
struct EventIndex {
  /// kRepairScheduled times at (replier, source, seq).
  std::map<LossKey, std::vector<sim::SimTime>> repair_scheduled;
  /// kRepairSent at (replier, source, seq): time + expedited flag.
  std::map<LossKey, std::vector<std::pair<sim::SimTime, bool>>> repair_sent;
  /// kExpAttempt times at (requestor, source, seq).
  std::map<LossKey, std::vector<sim::SimTime>> exp_attempt;
  /// Last cache consult at (node, source, seq) at or before a given time.
  std::map<LossKey, std::vector<std::pair<sim::SimTime, bool>>> cache_consult;
  /// Closing-event peer (the repair's sender), keyed by the closing
  /// (node, source, seq) and time — the lifecycle's recover_time matches.
  std::map<std::pair<LossKey, std::int64_t>, net::NodeId> closing_peer;
  /// Group-wide counts per (source, seq).
  std::map<GroupKey, int> group_requests;
  std::map<GroupKey, int> group_replies;
  /// Members crashed (and not yet recovered) when the stream ended.
  std::set<net::NodeId> crashed_at_end;
  sim::SimTime stream_end;
};

EventIndex build_index(std::span<const TraceEvent> events) {
  EventIndex ix;
  for (const TraceEvent& e : events) {
    ix.stream_end = std::max(ix.stream_end, e.at);
    switch (e.kind) {
      case EventKind::kRequestSent:
        ++ix.group_requests[{e.source, e.seq}];
        break;
      case EventKind::kRepairScheduled:
        ix.repair_scheduled[{e.node, e.source, e.seq}].push_back(e.at);
        break;
      case EventKind::kRepairSent:
        ix.repair_sent[{e.node, e.source, e.seq}].emplace_back(e.at,
                                                               e.detail == 1);
        ++ix.group_replies[{e.source, e.seq}];
        break;
      case EventKind::kExpAttempt:
        ix.exp_attempt[{e.node, e.source, e.seq}].push_back(e.at);
        break;
      case EventKind::kCacheHit:
      case EventKind::kCacheMiss:
        ix.cache_consult[{e.node, e.source, e.seq}].emplace_back(
            e.at, e.kind == EventKind::kCacheHit);
        break;
      case EventKind::kExpSuccess:
      case EventKind::kExpFallback:
      case EventKind::kRecovered:
        ix.closing_peer[{{e.node, e.source, e.seq}, e.at.ns()}] = e.peer;
        break;
      case EventKind::kFaultApplied:
        if (e.detail == kFaultCrash) ix.crashed_at_end.insert(e.node);
        if (e.detail == kFaultRecover) ix.crashed_at_end.erase(e.node);
        break;
      default:
        break;
    }
  }
  return ix;
}

/// Earliest time in `v` within (after, at_most], or infinity.
sim::SimTime first_in(const std::vector<sim::SimTime>* v, sim::SimTime after,
                      sim::SimTime at_most) {
  if (!v) return sim::SimTime::infinity();
  auto it = std::upper_bound(v->begin(), v->end(), after);
  if (it == v->end() || *it > at_most) return sim::SimTime::infinity();
  return *it;
}

/// Latest time in `v` at or before `at_most`, or infinity when none.
sim::SimTime last_at_or_before(const std::vector<sim::SimTime>* v,
                               sim::SimTime at_most) {
  if (!v) return sim::SimTime::infinity();
  auto it = std::upper_bound(v->begin(), v->end(), at_most);
  if (it == v->begin()) return sim::SimTime::infinity();
  return *std::prev(it);
}

template <typename M>
const typename M::mapped_type* find_ptr(const M& m,
                                        const typename M::key_type& k) {
  auto it = m.find(k);
  return it == m.end() ? nullptr : &it->second;
}

/// The monotone clamp: every candidate is forced into [prev, t_end], and a
/// missing candidate (infinity) inherits prev — so consecutive boundaries
/// telescope to exactly t_end − t0 regardless of which witnesses exist.
sim::SimTime clamp_boundary(sim::SimTime candidate, sim::SimTime prev,
                            sim::SimTime t_end) {
  if (candidate == sim::SimTime::infinity()) return prev;
  return std::min(std::max(candidate, prev), t_end);
}

void attribute_phases(CausalChain& chain, const EventIndex& ix) {
  const LossLifecycle& lc = chain.lifecycle;
  const sim::SimTime t0 = lc.detect_time;
  const sim::SimTime t_end = lc.recover_time;
  const LossKey replier_key{chain.replier, lc.source, lc.seq};

  const auto set_phase = [&](Phase p, sim::SimTime from, sim::SimTime to) {
    chain.phase_ns[static_cast<std::size_t>(p)] = (to - from).ns();
  };

  if (lc.expedited) {
    // detect → own expedited request → expedited reply → delivery. The
    // attempt may belong to another member whose expedited reply we
    // overheard (router-assist subcast); then both witnesses are foreign
    // and the whole latency lands in repair_transit.
    const sim::SimTime b1 = clamp_boundary(
        first_in(find_ptr(ix.exp_attempt, {lc.node, lc.source, lc.seq}), t0,
                 t_end),
        t0, t_end);
    sim::SimTime sent = sim::SimTime::infinity();
    if (const auto* v = find_ptr(ix.repair_sent, replier_key)) {
      for (const auto& [at, expedited] : *v) {
        if (at > t_end) break;
        if (expedited) sent = at;  // latest expedited send ≤ delivery
      }
    }
    const sim::SimTime b2 = clamp_boundary(sent, b1, t_end);
    set_phase(Phase::kReorderWait, t0, b1);
    set_phase(Phase::kExpTransit, b1, b2);
    set_phase(Phase::kRepairTransit, b2, t_end);
    return;
  }

  // Reactive: detect → own first request → reply scheduled at the replier
  // → repair sent → delivery. first_request_time is already windowed to
  // this lifecycle by the timeline reconstruction; it is infinity when
  // foreign requests suppressed us throughout (backoff collapses to 0 and
  // the wait is attributed downstream, where the recovery actually ran).
  const sim::SimTime b1 = clamp_boundary(lc.first_request_time, t0, t_end);
  sim::SimTime sent = sim::SimTime::infinity();
  if (const auto* v = find_ptr(ix.repair_sent, replier_key)) {
    for (const auto& [at, expedited] : *v) {
      if (at > t_end) break;
      sent = at;
      (void)expedited;  // a fallback may still ride an expedited reply
    }
  }
  const sim::SimTime b2 = clamp_boundary(
      last_at_or_before(find_ptr(ix.repair_scheduled, replier_key),
                        sent == sim::SimTime::infinity() ? t_end : sent),
      b1, t_end);
  const sim::SimTime b3 = clamp_boundary(sent, b2, t_end);
  set_phase(Phase::kBackoff, t0, b1);
  set_phase(Phase::kRequestWait, b1, b2);
  set_phase(Phase::kReplyWait, b2, b3);
  set_phase(Phase::kRepairTransit, b3, t_end);
}

std::int64_t median_ns(std::vector<std::int64_t> v) {
  if (v.empty()) return 0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + mid, v.end());
  return v[mid];
}

std::string implosion_note(const char* what, int count, int limit) {
  std::ostringstream os;
  os << count << ' ' << what << " for one loss (limit " << limit
     << "): suppression is not converging";
  return os.str();
}

}  // namespace

CausalReport analyze_causal(std::span<const TraceEvent> events,
                            const AnomalyConfig& config) {
  CausalReport report;
  report.timeline = reconstruct_timeline(events);
  const EventIndex ix = build_index(events);

  for (const LossLifecycle& lc : report.timeline.lifecycles) {
    if (lc.outcome != LossOutcome::kRecovered) continue;
    CausalChain chain;
    chain.lifecycle = lc;
    chain.latency_ns = (lc.recover_time - lc.detect_time).ns();
    if (const auto* peer = find_ptr(
            ix.closing_peer,
            {{lc.node, lc.source, lc.seq}, lc.recover_time.ns()}))
      chain.replier = *peer;
    if (const auto* consults =
            find_ptr(ix.cache_consult, {lc.node, lc.source, lc.seq})) {
      // The consult happens at detection; take the last one in the window.
      for (const auto& [at, hit] : *consults) {
        if (at < lc.detect_time || at > lc.recover_time) continue;
        chain.cache = hit ? CacheConsult::kHit : CacheConsult::kMiss;
      }
    }
    if (const auto* n = find_ptr(ix.group_requests, {lc.source, lc.seq}))
      chain.group_requests = *n;
    if (const auto* n = find_ptr(ix.group_replies, {lc.source, lc.seq}))
      chain.group_replies = *n;
    attribute_phases(chain, ix);
    report.chains.push_back(std::move(chain));
  }

  std::vector<std::int64_t> all, reactive;
  for (const CausalChain& c : report.chains) {
    all.push_back(c.latency_ns);
    if (!c.lifecycle.expedited) reactive.push_back(c.latency_ns);
  }
  report.median_latency_ns = median_ns(std::move(all));
  report.median_reactive_latency_ns = median_ns(std::move(reactive));

  // --- Detectors. Emitted grouped by kind, detection order within each —
  // a deterministic order that reads well in reports.
  const auto flag = [&](AnomalyKind kind, net::NodeId node, net::NodeId source,
                        net::SeqNo seq, double value, double threshold,
                        std::string note) {
    report.anomalies.push_back(
        {kind, node, source, seq, value, threshold, std::move(note)});
  };

  // Implosions are per (source, seq) group pathologies: flag each once, at
  // the first chain that exhibits the group.
  std::set<GroupKey> flagged_req, flagged_rep;
  for (const CausalChain& c : report.chains) {
    const GroupKey g{c.lifecycle.source, c.lifecycle.seq};
    if (c.group_requests >= config.request_implosion &&
        flagged_req.insert(g).second)
      flag(AnomalyKind::kRequestImplosion, c.lifecycle.node, g.first, g.second,
           c.group_requests, config.request_implosion,
           implosion_note("multicast requests", c.group_requests,
                          config.request_implosion));
    if (c.group_replies >= config.reply_implosion &&
        flagged_rep.insert(g).second)
      flag(AnomalyKind::kReplyImplosion, c.lifecycle.node, g.first, g.second,
           c.group_replies, config.reply_implosion,
           implosion_note("repairs", c.group_replies,
                          config.reply_implosion));
  }

  // Zombie recoveries: a loss still open when the stream ended at a member
  // that is alive — the recovery machinery stalled, not the member.
  for (const LossLifecycle& lc : report.timeline.lifecycles) {
    if (lc.outcome != LossOutcome::kOpen) continue;
    if (ix.crashed_at_end.count(lc.node)) continue;
    const double age = static_cast<double>((ix.stream_end - lc.detect_time).ns());
    std::ostringstream note;
    note << "loss open for " << (ix.stream_end - lc.detect_time).to_millis()
         << " ms at a live member when the run ended";
    flag(AnomalyKind::kZombieRecovery, lc.node, lc.source, lc.seq, age, 0,
         note.str());
  }

  // Cache inversions: an expedited recovery that consulted the cache, hit,
  // and STILL came in slower than the reactive median — the cached pair
  // pointed somewhere worse than the plain SRM race.
  if (report.median_reactive_latency_ns > 0) {
    const double limit = config.inversion_multiplier *
                         static_cast<double>(report.median_reactive_latency_ns);
    for (const CausalChain& c : report.chains) {
      if (!c.lifecycle.expedited || c.cache != CacheConsult::kHit) continue;
      if (static_cast<double>(c.latency_ns) <= limit) continue;
      std::ostringstream note;
      note << "cache-hit expedited recovery took "
           << static_cast<double>(c.latency_ns) / 1e6
           << " ms vs reactive median "
           << static_cast<double>(report.median_reactive_latency_ns) / 1e6
           << " ms";
      flag(AnomalyKind::kCacheInversion, c.lifecycle.node, c.lifecycle.source,
           c.lifecycle.seq, static_cast<double>(c.latency_ns), limit,
           note.str());
    }
  }

  // Tail outliers against the overall median.
  if (report.median_latency_ns > 0) {
    const double limit = config.tail_multiplier *
                         static_cast<double>(report.median_latency_ns);
    for (const CausalChain& c : report.chains) {
      if (static_cast<double>(c.latency_ns) <= limit) continue;
      std::ostringstream note;
      note << "latency " << static_cast<double>(c.latency_ns) / 1e6
           << " ms is over " << config.tail_multiplier << "x the median";
      flag(AnomalyKind::kTailOutlier, c.lifecycle.node, c.lifecycle.source,
           c.lifecycle.seq, static_cast<double>(c.latency_ns), limit,
           note.str());
    }
  }

  // Group for stable reading order; std::stable_sort keeps detection order
  // within a kind.
  std::stable_sort(report.anomalies.begin(), report.anomalies.end(),
                   [](const Anomaly& a, const Anomaly& b) {
                     return static_cast<int>(a.kind) < static_cast<int>(b.kind);
                   });
  return report;
}

void write_causal_report_json(std::ostream& os, const CausalReport& report) {
  os << "{\"schema\":\"cesrm.causal.v1\",\"summary\":{"
     << "\"losses\":" << report.timeline.losses
     << ",\"recovered\":" << report.timeline.recovered
     << ",\"unrecovered\":" << report.timeline.unrecovered
     << ",\"abandoned\":" << report.timeline.abandoned
     << ",\"expedited\":" << report.timeline.expedited_successes
     << ",\"median_latency_ns\":" << report.median_latency_ns
     << ",\"median_reactive_latency_ns\":" << report.median_reactive_latency_ns
     << ",\"anomalies\":" << report.anomalies.size() << "},\n\"chains\":[";
  bool first = true;
  for (const CausalChain& c : report.chains) {
    if (!first) os << ',';
    first = false;
    const LossLifecycle& lc = c.lifecycle;
    os << "\n{\"node\":" << lc.node << ",\"source\":" << lc.source
       << ",\"seq\":" << lc.seq << ",\"detect_ns\":" << lc.detect_time.ns()
       << ",\"latency_ns\":" << c.latency_ns
       << ",\"expedited\":" << (lc.expedited ? "true" : "false")
       << ",\"replier\":" << c.replier << ",\"cache\":\""
       << (c.cache == CacheConsult::kHit
               ? "hit"
               : c.cache == CacheConsult::kMiss ? "miss" : "none")
       << "\",\"requests\":" << lc.requests
       << ",\"suppressions\":" << lc.suppressions
       << ",\"group_requests\":" << c.group_requests
       << ",\"group_replies\":" << c.group_replies << ",\"phases\":{";
    bool pf = true;
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
      if (c.phase_ns[p] == 0) continue;  // off-path phases stay implicit
      if (!pf) os << ',';
      pf = false;
      os << '"' << phase_name(static_cast<Phase>(p)) << "\":" << c.phase_ns[p];
    }
    os << "}}";
  }
  os << "],\n\"anomalies\":[";
  first = true;
  for (const Anomaly& a : report.anomalies) {
    if (!first) os << ',';
    first = false;
    os << "\n{\"kind\":\"" << anomaly_kind_name(a.kind)
       << "\",\"node\":" << a.node << ",\"source\":" << a.source
       << ",\"seq\":" << a.seq << ",\"value\":";
    util::json_double(os, a.value);
    os << ",\"threshold\":";
    util::json_double(os, a.threshold);
    os << ",\"note\":";
    util::json_escape(os, a.note);
    os << '}';
  }
  os << "]}\n";
}

}  // namespace cesrm::obs
