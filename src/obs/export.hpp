// export.hpp — serializers for recorded event streams.
//
// Two formats, one JSON emission path (util/json.hpp):
//
//  * JSONL — one event per line, trivially greppable/parsable; the raw
//    material for ad-hoc analysis.
//  * Chrome trace_event JSON ({"traceEvents":[...]}) — loadable in
//    Perfetto / chrome://tracing. Each job of a sweep becomes a process
//    (pid = job index, named via a process_name metadata event); each
//    member node becomes a thread (tid = node id). Protocol events render
//    as instants (ph "i") and every recovered loss lifecycle as a duration
//    span (ph "X") from detection to delivery, so suppression dynamics and
//    expedited-vs-reactive latency are visible on one timeline. Counter
//    tracks (ph "C") plot cache pressure alongside: outstanding.<node> is
//    the member's open-loss count, cache.<node> its recovery-cache
//    occupancy (from kCacheStored).
//
// Both outputs contain only sim-time (µs) and ids — byte-identical for a
// given run regardless of worker count or wall-clock conditions.
#pragma once

#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "obs/events.hpp"

namespace cesrm::obs {

/// One event per line: {"ts_us":..,"kind":"..","node":..,...}.
void write_events_jsonl(std::ostream& os, std::span<const TraceEvent> events);

/// One job (= one experiment run) of a Chrome trace document.
struct ChromeTraceJob {
  std::string name;  ///< process label, e.g. "t4/srm"
  std::span<const TraceEvent> events;
};

/// Writes a complete {"traceEvents":[...]} document: per-job process
/// metadata, instants for every event, and recovery spans reconstructed
/// from each job's stream.
void write_chrome_trace(std::ostream& os,
                        std::span<const ChromeTraceJob> jobs);

}  // namespace cesrm::obs
