// trace_recorder.hpp — the run-wide sink for typed protocol events.
//
// One TraceRecorder serves one experiment run. The harness owns it and
// hands a raw pointer to the run's Simulator; every hook site in the
// protocol/network/fault layers is the two-instruction pattern
//
//   if (auto* rec = sim_.recorder()) rec->emit(...);
//
// so a run without observability (recorder == nullptr, the default) pays
// exactly one predictable-branch pointer test per hook — the overhead
// contract behind the "bench stdout stays byte-identical" guarantee.
//
// emit() always tallies the per-kind counter (the "events dispatched by
// type" profile); the full event stream is captured only when
// ObsConfig::trace asks for it. Everything recorded is sim-time and ids —
// deterministic by construction.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/sketch.hpp"

namespace cesrm::obs {

/// What an experiment run records. Default-constructed = everything off;
/// an all-off config makes the harness skip creating the recorder.
struct ObsConfig {
  bool trace = false;    ///< capture the full TraceEvent stream
  bool metrics = false;  ///< populate a MetricsSnapshot in the result
  bool profile = false;  ///< sim wall-time-per-sim-second profile (not
                         ///< exported: wall times are nondeterministic)
  bool stream = false;   ///< fold events into a constant-memory
                         ///< StreamingSketch instead of (or alongside)
                         ///< the full capture
  bool enabled() const { return trace || metrics || profile || stream; }
};

class TraceRecorder {
 public:
  explicit TraceRecorder(ObsConfig config) : config_(config) {
    if (config_.stream) sketch_ = std::make_unique<StreamingSketch>();
  }

  void emit(sim::SimTime at, EventKind kind, net::NodeId node,
            net::NodeId source = net::kInvalidNode,
            net::SeqNo seq = net::kNoSeq,
            net::NodeId peer = net::kInvalidNode, std::int64_t detail = 0,
            std::int64_t aux = 0) {
    ++counts_[static_cast<std::size_t>(kind)];
    if (config_.trace || sketch_) {
      const TraceEvent e{at, kind, node, source, seq, peer, detail, aux};
      if (sketch_) sketch_->fold(e);
      if (config_.trace) events_.push_back(e);
    }
  }

  const ObsConfig& config() const { return config_; }
  std::uint64_t count(EventKind kind) const {
    return counts_[static_cast<std::size_t>(kind)];
  }
  const std::array<std::uint64_t, kEventKindCount>& counts() const {
    return counts_;
  }
  const std::vector<TraceEvent>& events() const { return events_; }
  std::vector<TraceEvent> take_events() { return std::move(events_); }
  /// Null unless config().stream.
  const StreamingSketch* sketch() const { return sketch_.get(); }
  std::unique_ptr<StreamingSketch> take_sketch() { return std::move(sketch_); }

 private:
  ObsConfig config_;
  std::array<std::uint64_t, kEventKindCount> counts_{};
  std::vector<TraceEvent> events_;
  std::unique_ptr<StreamingSketch> sketch_;
};

}  // namespace cesrm::obs
