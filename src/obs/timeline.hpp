// timeline.hpp — per-loss recovery lifecycles folded from the event stream.
//
// reconstruct_timeline() replays a recorded TraceEvent stream and rebuilds
// what each receiver went through for every lost packet: detection → first
// own request → repair delivery, with expedited/reactive attribution and
// post-recovery duplicate counts. The reconstruction is the audit trail of
// the aggregate statistics: its totals reconcile EXACTLY with HostStats —
//
//   lifecycles            == Σ losses_detected
//   outcome kRecovered    == Σ recovered RecoveryRecords
//   outcome kOpen         == Σ unrecovered RecoveryRecords
//   outcome kAbandoned    == Σ losses_abandoned_at_crash
//   expedited lifecycles  == Σ expedited RecoveryRecords
//   silent_repairs        == Σ repairs_before_detection
//
// (the `obs` test label asserts these equalities on real Table-1 runs).
// A (node, source, seq) key can live through several lifecycles: a member
// that crashes with a loss outstanding abandons it (kFaultApplied closes
// every open lifecycle of the crashed node, mirroring fail() discarding
// the want state) and re-detects it during catch-up, opening a new record.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "obs/events.hpp"

namespace cesrm::obs {

enum class LossOutcome : std::uint8_t {
  kOpen = 0,   ///< still unrecovered when the run ended
  kRecovered,  ///< repair delivered
  kAbandoned,  ///< discarded when the member crashed
};

/// One loss-recovery episode at one receiver.
struct LossLifecycle {
  net::NodeId node = net::kInvalidNode;
  net::NodeId source = net::kInvalidNode;
  net::SeqNo seq = net::kNoSeq;
  sim::SimTime detect_time;
  /// First own request multicast (infinity when suppressed throughout).
  sim::SimTime first_request_time = sim::SimTime::infinity();
  /// Repair delivery (infinity unless outcome == kRecovered).
  sim::SimTime recover_time = sim::SimTime::infinity();
  LossOutcome outcome = LossOutcome::kOpen;
  bool expedited = false;          ///< recovered by an expedited reply
  bool expedited_attempted = false;
  int requests = 0;                ///< own multicast requests sent
  int suppressions = 0;            ///< back-offs on foreign requests
  int exp_attempts = 0;            ///< expedited/LMS requests sent
  int duplicates = 0;              ///< repairs received after delivery

  double latency_seconds() const {
    return (recover_time - detect_time).to_seconds();
  }
};

/// The reconstruction plus its reconciliation totals.
struct RecoveryTimeline {
  std::vector<LossLifecycle> lifecycles;  ///< in detection order

  std::uint64_t losses = 0;           ///< == lifecycles.size()
  std::uint64_t recovered = 0;
  std::uint64_t unrecovered = 0;      ///< open at end of stream
  std::uint64_t abandoned = 0;        ///< closed by a crash
  std::uint64_t expedited_successes = 0;
  std::uint64_t silent_repairs = 0;   ///< repairs that beat detection
  std::uint64_t duplicate_repairs = 0;
};

/// Folds an event stream (one run, any protocol) into lifecycles. Events
/// must be in emission order, as recorded.
RecoveryTimeline reconstruct_timeline(std::span<const TraceEvent> events);

}  // namespace cesrm::obs
