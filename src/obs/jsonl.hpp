// jsonl.hpp — reader for the JSONL traces our own exporter writes.
//
// The CLI forensics commands (explain / analyze) work offline, from a
// trace file rather than a live run, so the event stream must round-trip:
// write_events_jsonl → read_events_jsonl → the same TraceEvents. The
// parser is deliberately scoped to that closed loop — one object per
// line, the exporter's key set in any order, numbers and quoted kind
// names only — and reports the first malformed line instead of guessing.
// Timestamps survive exactly: ts_us is emitted with 17 significant digits
// (util::json_double), so llround(ts_us * 1000) reproduces the integer
// nanosecond tick for every sim-scale time.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/events.hpp"

namespace cesrm::obs {

/// Result of parsing one stream: events in file order, or the first error.
struct JsonlReadResult {
  std::vector<TraceEvent> events;
  bool ok = true;
  std::size_t error_line = 0;  ///< 1-based, valid when !ok
  std::string error;           ///< what was wrong with that line
};

/// Parses a JSONL trace as written by write_events_jsonl. Blank lines are
/// skipped; any other deviation stops the parse with a diagnostic.
JsonlReadResult read_events_jsonl(std::istream& is);

/// Reverse of event_kind_name(); returns false for unknown spellings.
bool parse_event_kind(const std::string& name, EventKind& out);

}  // namespace cesrm::obs
