// metrics.hpp — named counters/gauges/histograms for experiment runs.
//
// A MetricsRegistry collects per-run measurements by name; its snapshot
// travels inside ExperimentResult and is merged across the jobs of a
// parallel sweep. Determinism contract: std::map keeps names ordered,
// counters add, gauges take the maximum, and histograms accumulate
// bucket-wise over an identical grid — so a sweep's merged snapshot (and
// its JSON serialization) is byte-identical for any --jobs value as long
// as the merge happens in job order and no wall-clock quantity is ever
// registered. Wall-time profiles live elsewhere (ExperimentResult) for
// exactly that reason.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "util/stats.hpp"

namespace cesrm::obs {

/// The value part of a registry: plain data, mergeable, serializable.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;  ///< merged by maximum
  std::map<std::string, util::Histogram> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Deterministic accumulation: counters add, gauges max, histograms
  /// merge bucket-wise (a name absent on one side is adopted whole).
  /// CHECK-fails if a shared histogram name has a different grid.
  void merge(const MetricsSnapshot& other);

  /// One JSON object {"counters":{...},"gauges":{...},"histograms":{...}}
  /// via the shared util/json path; key order is the map order.
  void to_json(std::ostream& os) const;
};

/// Mutation interface the harness populates during collection.
class MetricsRegistry {
 public:
  void add(const std::string& name, std::uint64_t delta);
  /// Records `v` if it exceeds the gauge's current value.
  void gauge_max(const std::string& name, double v);
  /// Get-or-create; an existing histogram must have the same grid.
  util::Histogram& histogram(const std::string& name, double lo, double hi,
                             std::size_t buckets);

  const MetricsSnapshot& snapshot() const { return snap_; }
  MetricsSnapshot take() { return std::move(snap_); }

 private:
  MetricsSnapshot snap_;
};

}  // namespace cesrm::obs
