#include "obs/events.hpp"

namespace cesrm::obs {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kLossDetected: return "loss_detected";
    case EventKind::kRequestScheduled: return "request_scheduled";
    case EventKind::kRequestSuppressed: return "request_suppressed";
    case EventKind::kRequestSent: return "request_sent";
    case EventKind::kRepairScheduled: return "repair_scheduled";
    case EventKind::kRepairSuppressed: return "repair_suppressed";
    case EventKind::kRepairSent: return "repair_sent";
    case EventKind::kExpAttempt: return "exp_attempt";
    case EventKind::kCacheHit: return "cache_hit";
    case EventKind::kCacheMiss: return "cache_miss";
    case EventKind::kCacheStored: return "cache_stored";
    case EventKind::kExpSuccess: return "exp_success";
    case EventKind::kExpFallback: return "exp_fallback";
    case EventKind::kRecovered: return "recovered";
    case EventKind::kDuplicateRepair: return "duplicate_repair";
    case EventKind::kRepairBeforeDetection: return "repair_before_detection";
    case EventKind::kSessionSent: return "session_sent";
    case EventKind::kPacketDropped: return "packet_dropped";
    case EventKind::kFaultApplied: return "fault_applied";
    case EventKind::kDecodeError: return "decode_error";
    case EventKind::kRetransmissionSuppressed:
      return "retransmission_suppressed";
    case EventKind::kCount: break;
  }
  return "?";
}

}  // namespace cesrm::obs
