// events.hpp — the typed protocol-event vocabulary of the tracing subsystem.
//
// Every hook point in the protocol agents, the network, and the fault
// scheduler emits one of these kinds with a sim-time stamp and the ids
// that identify the affected loss (acting node, stream source, sequence
// number, optional peer). The vocabulary is deliberately small and stable:
// the recovery-timeline reconstructor (timeline.hpp) folds the stream into
// per-loss lifecycles whose totals reconcile exactly with HostStats, so a
// new kind must either be lifecycle-neutral or taught to the reconstructor.
#pragma once

#include <cstdint>

#include "net/ids.hpp"
#include "sim/time.hpp"

namespace cesrm::obs {

enum class EventKind : std::uint8_t {
  // Request side (SRM §2.1). Exactly one kLossDetected per WantState
  // creation — the event-level mirror of HostStats::losses_detected.
  kLossDetected = 0,     ///< detail: 1 when detected via a foreign request
  kRequestScheduled,     ///< request timer (re)armed; detail: back-off round
  kRequestSuppressed,    ///< backed off on a foreign request; detail: round
  kRequestSent,          ///< multicast request; detail: back-off round

  // Reply side (SRM §2.2).
  kRepairScheduled,      ///< reply timer armed; peer: requestor
  kRepairSuppressed,     ///< scheduled reply cancelled; peer: replier heard
  kRepairSent,           ///< repair sent; peer: requestor; detail: 1 = expedited

  // Expedited recovery (CESRM §3; LMS directed requests share the kinds).
  kExpAttempt,           ///< expedited/LMS request sent; peer: replier
  kCacheHit,             ///< select_pair found a tuple; peer: its replier;
                         ///< detail: 1 when the pair names us requestor
  kCacheMiss,            ///< cache had no usable tuple for the loss
  kCacheStored,          ///< reply admitted into the recovery cache;
                         ///< peer: replier; detail: per-source occupancy
                         ///< after the update (lifecycle-neutral)

  // Recovery outcomes — exactly one per RecoveryRecord created by
  // mark_received(): the reconstructor's closing events.
  kExpSuccess,           ///< recovered by an expedited reply; peer: replier
  kExpFallback,          ///< recovered reactively after an expedited attempt
  kRecovered,            ///< recovered reactively, no expedited attempt
  kDuplicateRepair,      ///< repair for a packet already held; peer: sender
  kRepairBeforeDetection,///< repair outran gap detection (silent repair)

  // Environment.
  kSessionSent,          ///< periodic session message multicast
  kPacketDropped,        ///< link crossing lost; node: to, peer: from,
                         ///< detail: PacketType
  kFaultApplied,         ///< detail: FaultDetail; node: member or link child
  kDecodeError,          ///< malformed wire frame dropped at ingress;
                         ///< detail: wire::DecodeErrorKind
  kRetransmissionSuppressed,  ///< reply-dedup ledger hit: repair already
                              ///< served before the crash; peer: requestor,
                              ///< detail: 1 = expedited path

  kCount,
};

inline constexpr std::size_t kEventKindCount =
    static_cast<std::size_t>(EventKind::kCount);

/// detail codes of kFaultApplied.
enum FaultDetail : std::int64_t {
  kFaultCrash = 0,
  kFaultRecover = 1,
  kFaultLinkDown = 2,
  kFaultLinkUp = 3,
};

/// Stable snake_case name, used by both exporters and metric names.
const char* event_kind_name(EventKind kind);

/// One recorded protocol event. Only sim-time and ids — no wall-clock
/// data — so recorded streams are bit-identical across replays and worker
/// counts.
struct TraceEvent {
  sim::SimTime at;
  EventKind kind = EventKind::kCount;
  net::NodeId node = net::kInvalidNode;    ///< acting member (or link child)
  net::NodeId source = net::kInvalidNode;  ///< stream the packet belongs to
  net::SeqNo seq = net::kNoSeq;
  net::NodeId peer = net::kInvalidNode;    ///< kind-specific counterpart
  std::int64_t detail = 0;                 ///< kind-specific extra
  /// Second kind-specific extra, in nanoseconds where it is a duration:
  /// closing events (kRecovered/kExpSuccess/kExpFallback) carry the
  /// recovery latency (now − detect), kRepairSent the reply scheduling
  /// wait (now − request arrival; 0 for expedited replies, which are
  /// sent immediately). The latency on the closing event is what lets
  /// the streaming sketch fold percentiles in O(1) state per event
  /// without reconstructing lifecycles.
  std::int64_t aux = 0;
};

}  // namespace cesrm::obs
