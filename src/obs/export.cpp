#include "obs/export.hpp"

#include "obs/timeline.hpp"
#include "util/json.hpp"

namespace cesrm::obs {

namespace {

/// Chrome traces use microsecond timestamps; keep sub-µs precision as a
/// fraction (json_double is locale-independent and deterministic).
void json_micros(std::ostream& os, sim::SimTime t) {
  util::json_double(os, static_cast<double>(t.ns()) / 1000.0);
}

void event_args(std::ostream& os, const TraceEvent& e) {
  os << "{\"source\":" << e.source << ",\"seq\":" << e.seq
     << ",\"peer\":" << e.peer << ",\"detail\":" << e.detail << '}';
}

}  // namespace

void write_events_jsonl(std::ostream& os, std::span<const TraceEvent> events) {
  for (const TraceEvent& e : events) {
    os << "{\"ts_us\":";
    json_micros(os, e.at);
    os << ",\"kind\":";
    util::json_escape(os, event_kind_name(e.kind));
    os << ",\"node\":" << e.node << ",\"source\":" << e.source
       << ",\"seq\":" << e.seq << ",\"peer\":" << e.peer
       << ",\"detail\":" << e.detail << "}\n";
  }
}

void write_chrome_trace(std::ostream& os,
                        std::span<const ChromeTraceJob> jobs) {
  os << "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ',';
    first = false;
    os << '\n';
  };

  for (std::size_t pid = 0; pid < jobs.size(); ++pid) {
    const ChromeTraceJob& job = jobs[pid];
    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":";
    util::json_escape(os, job.name);
    os << "}}";

    for (const TraceEvent& e : job.events) {
      sep();
      os << "{\"name\":";
      util::json_escape(os, event_kind_name(e.kind));
      os << ",\"ph\":\"i\",\"s\":\"t\",\"pid\":" << pid
         << ",\"tid\":" << e.node << ",\"ts\":";
      json_micros(os, e.at);
      os << ",\"args\":";
      event_args(os, e);
      os << '}';
    }

    // Recovery spans: detection → delivery per recovered lifecycle.
    const RecoveryTimeline tl = reconstruct_timeline(job.events);
    for (const LossLifecycle& lc : tl.lifecycles) {
      if (lc.outcome != LossOutcome::kRecovered) continue;
      sep();
      os << "{\"name\":\"recover " << lc.source << ':' << lc.seq
         << "\",\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << lc.node
         << ",\"ts\":";
      json_micros(os, lc.detect_time);
      os << ",\"dur\":";
      json_micros(os, lc.recover_time - lc.detect_time);
      os << ",\"args\":{\"expedited\":" << (lc.expedited ? "true" : "false")
         << ",\"requests\":" << lc.requests
         << ",\"suppressions\":" << lc.suppressions
         << ",\"exp_attempts\":" << lc.exp_attempts
         << ",\"duplicates\":" << lc.duplicates << "}}";
    }
  }
  os << "\n]}\n";
}

}  // namespace cesrm::obs
