#include "obs/export.hpp"

#include <map>

#include "obs/timeline.hpp"
#include "util/json.hpp"

namespace cesrm::obs {

namespace {

/// Chrome traces use microsecond timestamps; keep sub-µs precision as a
/// fraction (json_double is locale-independent and deterministic).
void json_micros(std::ostream& os, sim::SimTime t) {
  util::json_double(os, static_cast<double>(t.ns()) / 1000.0);
}

void event_args(std::ostream& os, const TraceEvent& e) {
  os << "{\"source\":" << e.source << ",\"seq\":" << e.seq
     << ",\"peer\":" << e.peer << ",\"detail\":" << e.detail
     << ",\"aux\":" << e.aux << '}';
}

}  // namespace

void write_events_jsonl(std::ostream& os, std::span<const TraceEvent> events) {
  for (const TraceEvent& e : events) {
    os << "{\"ts_us\":";
    json_micros(os, e.at);
    os << ",\"kind\":";
    util::json_escape(os, event_kind_name(e.kind));
    os << ",\"node\":" << e.node << ",\"source\":" << e.source
       << ",\"seq\":" << e.seq << ",\"peer\":" << e.peer
       << ",\"detail\":" << e.detail << ",\"aux\":" << e.aux << "}\n";
  }
}

void write_chrome_trace(std::ostream& os,
                        std::span<const ChromeTraceJob> jobs) {
  os << "{\"traceEvents\":[";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ',';
    first = false;
    os << '\n';
  };

  for (std::size_t pid = 0; pid < jobs.size(); ++pid) {
    const ChromeTraceJob& job = jobs[pid];
    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":";
    util::json_escape(os, job.name);
    os << "}}";

    for (const TraceEvent& e : job.events) {
      sep();
      os << "{\"name\":";
      util::json_escape(os, event_kind_name(e.kind));
      os << ",\"ph\":\"i\",\"s\":\"t\",\"pid\":" << pid
         << ",\"tid\":" << e.node << ",\"ts\":";
      json_micros(os, e.at);
      os << ",\"args\":";
      event_args(os, e);
      os << '}';
    }

    // Counter tracks (ph "C"): cache pressure next to the recovery spans.
    // One track per (pid, name), so the node id goes into the name.
    //  * outstanding.<node> — open loss lifecycles at that member (+1 on
    //    detection, −1 on the closing event, reset on a crash, mirroring
    //    the reconstructor's open-lifecycle bookkeeping);
    //  * cache.<node> — per-source recovery-cache occupancy reported by
    //    kCacheStored's detail.
    std::map<net::NodeId, std::int64_t> outstanding;
    const auto counter = [&](const char* prefix, net::NodeId node,
                             sim::SimTime at, const char* arg,
                             std::int64_t value) {
      sep();
      os << "{\"name\":\"" << prefix << '.' << node
         << "\",\"ph\":\"C\",\"pid\":" << pid << ",\"tid\":" << node
         << ",\"ts\":";
      json_micros(os, at);
      os << ",\"args\":{\"" << arg << "\":" << value << "}}";
    };
    for (const TraceEvent& e : job.events) {
      switch (e.kind) {
        case EventKind::kLossDetected:
          counter("outstanding", e.node, e.at, "losses", ++outstanding[e.node]);
          break;
        case EventKind::kExpSuccess:
        case EventKind::kExpFallback:
        case EventKind::kRecovered:
          if (auto it = outstanding.find(e.node);
              it != outstanding.end() && it->second > 0)
            counter("outstanding", e.node, e.at, "losses", --it->second);
          break;
        case EventKind::kFaultApplied:
          if (e.detail == kFaultCrash) {
            if (auto it = outstanding.find(e.node);
                it != outstanding.end() && it->second > 0) {
              it->second = 0;
              counter("outstanding", e.node, e.at, "losses", 0);
            }
          }
          break;
        case EventKind::kCacheStored:
          counter("cache", e.node, e.at, "entries", e.detail);
          break;
        default:
          break;
      }
    }

    // Recovery spans: detection → delivery per recovered lifecycle.
    const RecoveryTimeline tl = reconstruct_timeline(job.events);
    for (const LossLifecycle& lc : tl.lifecycles) {
      if (lc.outcome != LossOutcome::kRecovered) continue;
      sep();
      os << "{\"name\":\"recover " << lc.source << ':' << lc.seq
         << "\",\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << lc.node
         << ",\"ts\":";
      json_micros(os, lc.detect_time);
      os << ",\"dur\":";
      json_micros(os, lc.recover_time - lc.detect_time);
      os << ",\"args\":{\"expedited\":" << (lc.expedited ? "true" : "false")
         << ",\"requests\":" << lc.requests
         << ",\"suppressions\":" << lc.suppressions
         << ",\"exp_attempts\":" << lc.exp_attempts
         << ",\"duplicates\":" << lc.duplicates << "}}";
    }
  }
  os << "\n]}\n";
}

}  // namespace cesrm::obs
