#include "obs/timeline.hpp"

#include <map>
#include <tuple>

namespace cesrm::obs {

namespace {
using LossKey = std::tuple<net::NodeId, net::NodeId, net::SeqNo>;

LossKey key_of(const TraceEvent& e) { return {e.node, e.source, e.seq}; }
}  // namespace

RecoveryTimeline reconstruct_timeline(std::span<const TraceEvent> events) {
  RecoveryTimeline tl;
  // Index into tl.lifecycles of the key's *open* lifecycle, and of its
  // latest lifecycle of any state (duplicates arrive after closing).
  std::map<LossKey, std::size_t> open;
  std::map<LossKey, std::size_t> latest;

  const auto close = [&](std::size_t idx, const TraceEvent& e,
                         LossOutcome outcome) {
    LossLifecycle& lc = tl.lifecycles[idx];
    lc.outcome = outcome;
    if (outcome == LossOutcome::kRecovered) {
      lc.recover_time = e.at;
      lc.expedited = e.kind == EventKind::kExpSuccess;
    }
  };

  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case EventKind::kLossDetected: {
        LossLifecycle lc;
        lc.node = e.node;
        lc.source = e.source;
        lc.seq = e.seq;
        lc.detect_time = e.at;
        const std::size_t idx = tl.lifecycles.size();
        tl.lifecycles.push_back(lc);
        open[key_of(e)] = idx;
        latest[key_of(e)] = idx;
        break;
      }
      case EventKind::kRequestSent:
        if (auto it = open.find(key_of(e)); it != open.end()) {
          LossLifecycle& lc = tl.lifecycles[it->second];
          ++lc.requests;
          if (e.at < lc.first_request_time) lc.first_request_time = e.at;
        }
        break;
      case EventKind::kRequestSuppressed:
        if (auto it = open.find(key_of(e)); it != open.end())
          ++tl.lifecycles[it->second].suppressions;
        break;
      case EventKind::kExpAttempt:
        if (auto it = open.find(key_of(e)); it != open.end()) {
          LossLifecycle& lc = tl.lifecycles[it->second];
          ++lc.exp_attempts;
          lc.expedited_attempted = true;
        }
        break;
      case EventKind::kExpSuccess:
      case EventKind::kExpFallback:
      case EventKind::kRecovered:
        if (auto it = open.find(key_of(e)); it != open.end()) {
          close(it->second, e, LossOutcome::kRecovered);
          open.erase(it);
        }
        break;
      case EventKind::kDuplicateRepair: {
        ++tl.duplicate_repairs;
        // Charge the key's latest lifecycle when one exists (duplicates of
        // packets received originally have none).
        if (auto it = latest.find(key_of(e)); it != latest.end())
          ++tl.lifecycles[it->second].duplicates;
        break;
      }
      case EventKind::kRepairBeforeDetection:
        ++tl.silent_repairs;
        break;
      case EventKind::kFaultApplied:
        // A crash discards every outstanding want state of that member
        // (SrmAgent::fail()); mirror it by abandoning its open lifecycles.
        if (e.detail == kFaultCrash) {
          for (auto it = open.begin(); it != open.end();) {
            if (std::get<0>(it->first) == e.node) {
              close(it->second, e, LossOutcome::kAbandoned);
              it = open.erase(it);
            } else {
              ++it;
            }
          }
        }
        break;
      default:
        break;  // lifecycle-neutral kinds
    }
  }

  tl.losses = tl.lifecycles.size();
  for (const LossLifecycle& lc : tl.lifecycles) {
    switch (lc.outcome) {
      case LossOutcome::kOpen: ++tl.unrecovered; break;
      case LossOutcome::kRecovered:
        ++tl.recovered;
        if (lc.expedited) ++tl.expedited_successes;
        break;
      case LossOutcome::kAbandoned: ++tl.abandoned; break;
    }
  }
  return tl;
}

}  // namespace cesrm::obs
