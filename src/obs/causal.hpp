// causal.hpp — per-loss causal chains with exact phase attribution.
//
// The recovery timeline (timeline.hpp) says *how long* each recovery took;
// this layer says *where the time went*. analyze_causal() replays a
// recorded TraceEvent stream and, for every recovered loss, splits the
// recovery latency into named causal phases by locating the events that
// hand the recovery from one actor to the next:
//
//   reactive:   detect ──backoff──▶ own request sent ──request_wait──▶
//               reply scheduled at the eventual replier ──reply_wait──▶
//               repair sent ──repair_transit──▶ delivered
//   expedited:  detect ──reorder_wait──▶ expedited request sent
//               ──exp_transit──▶ expedited reply sent
//               ──repair_transit──▶ delivered
//
// Phase boundaries are monotone-clamped into [detect, recover]:
//
//   b_i = min(max(c_i, b_{i-1}), t_end)
//
// and a boundary whose witness event is missing (e.g. the member never
// sent its own request because foreign requests kept suppressing it, or
// another member's expedited repair outran ours) inherits the previous
// boundary, collapsing that phase to zero. The boundaries therefore
// telescope: for EVERY recovered loss the phase durations sum to exactly
// the recovery latency in integer nanoseconds — the reconciliation
// contract the `obs` test label asserts on faulted Table-1 runs.
//
// On top of the chains sit anomaly detectors (detect_anomalies): request /
// reply implosion, zombie recoveries (open forever at a live member),
// cache-hit-but-slower inversions, and tail outliers. Both chains and
// anomalies serialize to a machine-readable JSON report.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "obs/timeline.hpp"

namespace cesrm::obs {

/// Phase labels, in chain order. Reactive chains use kBackoff..kRepairTransit;
/// expedited chains use kReorderWait..kRepairTransit.
enum class Phase : std::uint8_t {
  kBackoff = 0,    ///< detect → first own multicast request
  kRequestWait,    ///< request in flight → reply scheduled at the replier
  kReplyWait,      ///< reply timer wait at the replier → repair sent
  kReorderWait,    ///< detect → own expedited request sent (REORDER-DELAY)
  kExpTransit,     ///< expedited request in flight → expedited reply sent
  kRepairTransit,  ///< repair in flight → delivered
  kCount,
};

inline constexpr std::size_t kPhaseCount =
    static_cast<std::size_t>(Phase::kCount);

/// Stable snake_case phase name.
const char* phase_name(Phase phase);

/// Did the loss consult the recovery cache at detection, and what came back?
enum class CacheConsult : std::uint8_t {
  kNone = 0,  ///< no consult recorded (plain SRM, or pre-detection repair)
  kMiss,
  kHit,
};

/// One recovered loss with its latency split into causal phases.
struct CausalChain {
  LossLifecycle lifecycle;          ///< who/what/when (from the timeline)
  net::NodeId replier = net::kInvalidNode;  ///< sender of the winning repair
  CacheConsult cache = CacheConsult::kNone;
  std::int64_t latency_ns = 0;      ///< recover − detect
  /// Duration of each phase in ns, indexed by Phase; phases not on this
  /// chain's path are zero. Invariant: sum == latency_ns, exactly.
  std::int64_t phase_ns[kPhaseCount] = {};
  /// Group-wide pressure for this (source, seq): multicast requests and
  /// repairs sent by ANY member — the implosion detectors' input.
  int group_requests = 0;
  int group_replies = 0;
};

enum class AnomalyKind : std::uint8_t {
  kRequestImplosion = 0,  ///< suppression failed: too many requests for one loss
  kReplyImplosion,        ///< too many repairs multicast for one loss
  kZombieRecovery,        ///< loss still open at stream end at a live member
  kCacheInversion,        ///< cache-hit expedited recovery slower than the
                          ///< reactive median — caching made it worse
  kTailOutlier,           ///< latency far beyond the run's median
  kCount,
};

inline constexpr std::size_t kAnomalyKindCount =
    static_cast<std::size_t>(AnomalyKind::kCount);

/// Stable snake_case anomaly name.
const char* anomaly_kind_name(AnomalyKind kind);

/// Detector thresholds. Defaults are deliberately loose: they flag
/// pathologies, not noise.
struct AnomalyConfig {
  int request_implosion = 8;       ///< group requests per loss
  int reply_implosion = 4;         ///< group repairs per loss
  double inversion_multiplier = 1.5;  ///< × reactive median latency
  double tail_multiplier = 8.0;       ///< × overall median latency
};

/// One flagged pathology, pointing at the loss that exhibits it.
struct Anomaly {
  AnomalyKind kind = AnomalyKind::kCount;
  net::NodeId node = net::kInvalidNode;
  net::NodeId source = net::kInvalidNode;
  net::SeqNo seq = net::kNoSeq;
  double value = 0;      ///< the observation (count, or latency in ns)
  double threshold = 0;  ///< the limit it crossed
  std::string note;      ///< one human-readable sentence
};

/// The full forensic product of one recorded run.
struct CausalReport {
  RecoveryTimeline timeline;          ///< reconciliation totals + lifecycles
  std::vector<CausalChain> chains;    ///< recovered losses, detection order
  std::vector<Anomaly> anomalies;     ///< detection order within kind order
  std::int64_t median_latency_ns = 0;          ///< over all chains
  std::int64_t median_reactive_latency_ns = 0; ///< over reactive chains only
};

/// Folds one run's event stream (emission order) into chains and runs the
/// anomaly detectors.
CausalReport analyze_causal(std::span<const TraceEvent> events,
                            const AnomalyConfig& config = {});

/// Machine-readable report: {"schema":"cesrm.causal.v1","summary":{...},
/// "chains":[...],"anomalies":[...]}. All durations are integer ns —
/// byte-identical across replays and worker counts.
void write_causal_report_json(std::ostream& os, const CausalReport& report);

}  // namespace cesrm::obs
