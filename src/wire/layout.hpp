// layout.hpp — the canonical CESRM wire layout: constants, field sizes,
// validation bounds, and the decode-error taxonomy.
//
// This header is deliberately dependency-free (plain integers only) so the
// lowest layers can share the byte accounting without linking the codec:
// net::Packet::encoded_size() sums these constants, and wire::Encoder
// produces frames whose sizes match it exactly (enforced by the wire test
// suite). Everything on the wire is little-endian; multi-byte fields are
// assembled byte-by-byte, so the format is identical on any host.
//
// Frame layout (version 1), one PDU per frame:
//
//   off  0  u16  magic        0xCE04
//   off  2  u8   version      1
//   off  3  u8   type         PacketType (0..5)
//   off  4  u32  frame_len    total frame bytes, header included
//   off  8  i32  source       stream originator (>= 0)
//   off 12  i64  seq          data sequence number (-1 for SESSION)
//   off 20  i32  sender       transmitting member (>= 0)
//   off 24  i32  dest         unicast destination (-1 unless EXP-REQUEST)
//   off 28  u32  payload_len  payload bytes that follow the typed fields
//   off 32  ...  per-type fields, then payload_len zero bytes
//
// Per-type fields:
//   DATA                — none
//   SESSION             — i64 stamp_ns, u16 n_streams, u16 n_echoes,
//                         n_streams × { i32 source, i64 highest_seq },
//                         n_echoes  × { i32 peer, i64 stamp_ns, i64 hold_ns }
//   REQUEST             — i32 requestor, f64 dist_requestor_source
//   REPLY / EXP-REQUEST / EXP-REPLY
//                       — i32 requestor, f64 dist_requestor_source,
//                         i32 replier,   f64 dist_replier_requestor,
//                         i32 turning_point    (the §3.1 tuple + §3.3 field)
//
// The simulator does not model payload content, so the canonical encoding
// zero-fills the payload and the decoder rejects non-zero payload bytes —
// this keeps encode(decode(b)) == b exact for every accepted frame.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cesrm::wire {

inline constexpr std::uint16_t kMagic = 0xCE04;
inline constexpr std::uint8_t kVersion = 1;

// Fixed sizes, in bytes.
inline constexpr std::size_t kFramePrefixSize = 8;  // magic..frame_len
inline constexpr std::size_t kHeaderSize = 32;
inline constexpr std::size_t kRequestAnnSize = 12;   // i32 + f64
inline constexpr std::size_t kReplyAnnSize = 28;     // i32+f64+i32+f64+i32
inline constexpr std::size_t kSessionFixedSize = 12; // i64 stamp + 2 × u16
inline constexpr std::size_t kStreamAdvertSize = 12; // i32 + i64
inline constexpr std::size_t kSessionEchoSize = 20;  // i32 + i64 + i64

// Validation bounds. Generous for any simulated topology, tight enough to
// classify random garbage as kFieldOutOfRange rather than allocate for it.
inline constexpr std::int32_t kMaxNodeId = (1 << 24) - 1;
inline constexpr std::int64_t kMaxSeqNo = (1LL << 48) - 1;
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 20;
inline constexpr std::uint32_t kMaxFrameBytes = 4u << 20;
inline constexpr double kMaxDistanceSeconds = 1e6;

/// Everything a hostile byte stream can be rejected for. Decoding never
/// throws and never reads out of bounds; it returns one of these.
enum class DecodeErrorKind : std::uint8_t {
  kTruncated = 0,       ///< frame ends before a field (or the stated length)
  kBadMagic,            ///< first two bytes are not kMagic
  kBadVersion,          ///< version byte is not kVersion
  kFieldOutOfRange,     ///< a parsed field violates its documented bounds
  kTrailingGarbage,     ///< bytes left over inside or after a parsed frame
};
inline constexpr std::size_t kDecodeErrorKindCount = 5;

inline constexpr const char* decode_error_name(DecodeErrorKind kind) {
  switch (kind) {
    case DecodeErrorKind::kTruncated: return "truncated";
    case DecodeErrorKind::kBadMagic: return "bad-magic";
    case DecodeErrorKind::kBadVersion: return "bad-version";
    case DecodeErrorKind::kFieldOutOfRange: return "field-out-of-range";
    case DecodeErrorKind::kTrailingGarbage: return "trailing-garbage";
  }
  return "?";
}

}  // namespace cesrm::wire
