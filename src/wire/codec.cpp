#include "wire/codec.hpp"

#include <cmath>
#include <cstring>

#include "util/check.hpp"

namespace cesrm::wire {

namespace {

// ---------------------------------------------------------------------------
// Little-endian primitives. Byte-assembled rather than memcpy'd so the
// format is host-endianness-independent; the compiler folds these into
// single moves on little-endian targets.
// ---------------------------------------------------------------------------

void put_u16(std::vector<std::uint8_t>* out, std::uint16_t v) {
  out->push_back(static_cast<std::uint8_t>(v));
  out->push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_i32(std::vector<std::uint8_t>* out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_i64(std::vector<std::uint8_t>* out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_f64(std::vector<std::uint8_t>* out, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

/// Bounded little-endian reader over one frame. Every read either succeeds
/// or records a kTruncated error at the current offset; reads after a
/// failure are no-ops, so parse code can read a batch of fields and check
/// once.
class Cursor {
 public:
  Cursor(std::span<const std::uint8_t> frame, std::size_t base_offset)
      : frame_(frame), base_(base_offset) {}

  bool ok() const { return !error_; }
  const std::optional<DecodeError>& error() const { return error_; }
  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return frame_.size() - pos_; }

  void fail(DecodeErrorKind kind, const char* field) {
    if (!error_) error_ = DecodeError{kind, base_ + pos_, field};
  }

  std::uint16_t u16(const char* field) {
    std::uint64_t v = raw(2, field);
    return static_cast<std::uint16_t>(v);
  }
  std::uint32_t u32(const char* field) {
    return static_cast<std::uint32_t>(raw(4, field));
  }
  std::int32_t i32(const char* field) {
    return static_cast<std::int32_t>(static_cast<std::uint32_t>(raw(4, field)));
  }
  std::int64_t i64(const char* field) {
    return static_cast<std::int64_t>(raw(8, field));
  }
  double f64(const char* field) {
    const std::uint64_t bits = raw(8, field);
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  /// Consumes `n` bytes, requiring them all zero (the canonical payload).
  void zeros(std::size_t n, const char* field) {
    if (error_) return;
    if (remaining() < n) {
      fail(DecodeErrorKind::kTruncated, field);
      return;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (frame_[pos_ + i] != 0) {
        pos_ += i;
        fail(DecodeErrorKind::kFieldOutOfRange, field);
        return;
      }
    }
    pos_ += n;
  }

 private:
  std::uint64_t raw(std::size_t n, const char* field) {
    if (error_) return 0;
    if (remaining() < n) {
      fail(DecodeErrorKind::kTruncated, field);
      return 0;
    }
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i)
      v |= static_cast<std::uint64_t>(frame_[pos_ + i]) << (8 * i);
    pos_ += n;
    return v;
  }

  std::span<const std::uint8_t> frame_;
  std::size_t base_;
  std::size_t pos_ = 0;
  std::optional<DecodeError> error_;
};

// ---------------------------------------------------------------------------
// Field validation
// ---------------------------------------------------------------------------

bool valid_node(net::NodeId v) { return v >= 0 && v <= kMaxNodeId; }
bool valid_node_or_none(net::NodeId v) {
  return v == net::kInvalidNode || valid_node(v);
}
bool valid_dist(double v) {
  return std::isfinite(v) && v >= 0.0 && v <= kMaxDistanceSeconds;
}

}  // namespace

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

void encode_packet(const net::Packet& pkt, std::vector<std::uint8_t>* out) {
  const std::size_t frame_len = pkt.encoded_size();
  out->reserve(out->size() + frame_len);
  put_u16(out, kMagic);
  out->push_back(kVersion);
  out->push_back(static_cast<std::uint8_t>(pkt.type));
  put_u32(out, static_cast<std::uint32_t>(frame_len));
  put_i32(out, pkt.source);
  put_i64(out, pkt.seq);
  put_i32(out, pkt.sender);
  put_i32(out, pkt.dest);
  const std::uint32_t payload_len =
      pkt.size_bytes > 0 ? static_cast<std::uint32_t>(pkt.size_bytes) : 0;
  put_u32(out, payload_len);

  switch (pkt.type) {
    case net::PacketType::kData:
      CESRM_DCHECK(pkt.session == nullptr);
      break;
    case net::PacketType::kSession: {
      CESRM_CHECK(pkt.session != nullptr);
      const net::SessionPayload& s = *pkt.session;
      CESRM_CHECK(s.streams.size() <= 0xFFFF && s.echoes.size() <= 0xFFFF);
      put_i64(out, s.stamp.ns());
      put_u16(out, static_cast<std::uint16_t>(s.streams.size()));
      put_u16(out, static_cast<std::uint16_t>(s.echoes.size()));
      for (const net::StreamAdvert& a : s.streams) {
        put_i32(out, a.source);
        put_i64(out, a.highest_seq);
      }
      for (const net::SessionEcho& e : s.echoes) {
        put_i32(out, e.peer);
        put_i64(out, e.peer_stamp.ns());
        put_i64(out, e.hold.ns());
      }
      break;
    }
    case net::PacketType::kRequest:
      put_i32(out, pkt.ann.requestor);
      put_f64(out, pkt.ann.dist_requestor_source);
      break;
    case net::PacketType::kReply:
    case net::PacketType::kExpRequest:
    case net::PacketType::kExpReply:
      put_i32(out, pkt.ann.requestor);
      put_f64(out, pkt.ann.dist_requestor_source);
      put_i32(out, pkt.ann.replier);
      put_f64(out, pkt.ann.dist_replier_requestor);
      put_i32(out, pkt.ann.turning_point);
      break;
  }
  // Payload content is not modelled: canonical frames zero-fill it.
  out->insert(out->end(), payload_len, 0);
}

std::vector<std::uint8_t> encode_packet(const net::Packet& pkt) {
  std::vector<std::uint8_t> out;
  encode_packet(pkt, &out);
  return out;
}

std::size_t Encoder::add(const net::Packet& pkt) {
  const std::size_t before = buf_.size();
  encode_packet(pkt, &buf_);
  const std::size_t n = buf_.size() - before;
  const auto i = static_cast<std::size_t>(pkt.type);
  ++counts_[i];
  bytes_[i] += n;
  return n;
}

std::uint64_t Encoder::total_count() const {
  std::uint64_t n = 0;
  for (const auto c : counts_) n += c;
  return n;
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

std::optional<DecodeError> decode_packet(std::span<const std::uint8_t> bytes,
                                         net::Packet* out,
                                         std::size_t* consumed) {
  // Prologue: magic, version, type, frame length. Checked field by field so
  // the error names the first thing wrong with the buffer.
  if (bytes.size() < 2)
    return DecodeError{DecodeErrorKind::kTruncated, 0, "magic"};
  const std::uint16_t magic = static_cast<std::uint16_t>(
      bytes[0] | (static_cast<std::uint16_t>(bytes[1]) << 8));
  if (magic != kMagic)
    return DecodeError{DecodeErrorKind::kBadMagic, 0, "magic"};
  if (bytes.size() < 3)
    return DecodeError{DecodeErrorKind::kTruncated, 2, "version"};
  if (bytes[2] != kVersion)
    return DecodeError{DecodeErrorKind::kBadVersion, 2, "version"};
  if (bytes.size() < 4)
    return DecodeError{DecodeErrorKind::kTruncated, 3, "type"};
  if (bytes[3] >= net::kPacketTypeCount)
    return DecodeError{DecodeErrorKind::kFieldOutOfRange, 3, "type"};
  const auto type = static_cast<net::PacketType>(bytes[3]);
  if (bytes.size() < 8)
    return DecodeError{DecodeErrorKind::kTruncated, 4, "frame_len"};
  std::uint32_t frame_len = 0;
  for (int i = 0; i < 4; ++i)
    frame_len |= static_cast<std::uint32_t>(bytes[4 + i]) << (8 * i);
  if (frame_len < kHeaderSize || frame_len > kMaxFrameBytes)
    return DecodeError{DecodeErrorKind::kFieldOutOfRange, 4, "frame_len"};
  if (bytes.size() < frame_len)
    return DecodeError{DecodeErrorKind::kTruncated, bytes.size(), "frame"};

  // From here every read is bounded by the stated frame length: a frame
  // whose fields need more than frame_len bytes is truncated; one whose
  // fields need fewer has trailing garbage inside the frame.
  Cursor cur(bytes.subspan(kFramePrefixSize, frame_len - kFramePrefixSize),
             kFramePrefixSize);

  net::Packet pkt;
  pkt.type = type;
  pkt.source = cur.i32("source");
  pkt.seq = cur.i64("seq");
  pkt.sender = cur.i32("sender");
  pkt.dest = cur.i32("dest");
  const std::uint32_t payload_len = cur.u32("payload_len");
  if (!cur.ok()) return cur.error();

  if (!valid_node(pkt.source))
    return DecodeError{DecodeErrorKind::kFieldOutOfRange, 8, "source"};
  if (type == net::PacketType::kSession) {
    if (pkt.seq != net::kNoSeq)
      return DecodeError{DecodeErrorKind::kFieldOutOfRange, 12, "seq"};
  } else if (pkt.seq < 0 || pkt.seq > kMaxSeqNo) {
    return DecodeError{DecodeErrorKind::kFieldOutOfRange, 12, "seq"};
  }
  if (!valid_node(pkt.sender))
    return DecodeError{DecodeErrorKind::kFieldOutOfRange, 20, "sender"};
  if (type == net::PacketType::kExpRequest ? !valid_node(pkt.dest)
                                           : pkt.dest != net::kInvalidNode)
    return DecodeError{DecodeErrorKind::kFieldOutOfRange, 24, "dest"};
  if (payload_len > kMaxPayloadBytes ||
      (!net::is_payload(type) && payload_len != 0))
    return DecodeError{DecodeErrorKind::kFieldOutOfRange, 28, "payload_len"};
  pkt.size_bytes = static_cast<int>(payload_len);

  switch (type) {
    case net::PacketType::kData:
      break;
    case net::PacketType::kSession: {
      auto session = std::make_shared<net::SessionPayload>();
      const std::int64_t stamp = cur.i64("stamp");
      const std::uint16_t n_streams = cur.u16("n_streams");
      const std::uint16_t n_echoes = cur.u16("n_echoes");
      if (!cur.ok()) return cur.error();
      if (stamp < 0)
        return DecodeError{DecodeErrorKind::kFieldOutOfRange,
                           kHeaderSize, "stamp"};
      // The counts are bounded (u16) and checked against the bytes actually
      // present before anything is reserved — a hostile count can cost at
      // most one failed comparison, never an allocation.
      const std::size_t need =
          n_streams * kStreamAdvertSize + n_echoes * kSessionEchoSize;
      if (cur.remaining() < need + payload_len)
        return DecodeError{DecodeErrorKind::kTruncated,
                           kFramePrefixSize + cur.pos() + cur.remaining(),
                           "session_entries"};
      session->stamp = sim::SimTime::nanos(stamp);
      session->streams.reserve(n_streams);
      for (std::uint16_t i = 0; i < n_streams; ++i) {
        net::StreamAdvert a;
        a.source = cur.i32("stream.source");
        a.highest_seq = cur.i64("stream.highest_seq");
        if (!valid_node(a.source))
          return DecodeError{DecodeErrorKind::kFieldOutOfRange,
                             kFramePrefixSize + cur.pos(), "stream.source"};
        if (a.highest_seq < net::kNoSeq || a.highest_seq > kMaxSeqNo)
          return DecodeError{DecodeErrorKind::kFieldOutOfRange,
                             kFramePrefixSize + cur.pos(),
                             "stream.highest_seq"};
        session->streams.push_back(a);
      }
      session->echoes.reserve(n_echoes);
      for (std::uint16_t i = 0; i < n_echoes; ++i) {
        net::SessionEcho e;
        e.peer = cur.i32("echo.peer");
        const std::int64_t peer_stamp = cur.i64("echo.peer_stamp");
        const std::int64_t hold = cur.i64("echo.hold");
        if (!valid_node(e.peer))
          return DecodeError{DecodeErrorKind::kFieldOutOfRange,
                             kFramePrefixSize + cur.pos(), "echo.peer"};
        if (peer_stamp < 0 || hold < 0)
          return DecodeError{DecodeErrorKind::kFieldOutOfRange,
                             kFramePrefixSize + cur.pos(), "echo.times"};
        e.peer_stamp = sim::SimTime::nanos(peer_stamp);
        e.hold = sim::SimTime::nanos(hold);
        session->echoes.push_back(e);
      }
      pkt.session = std::move(session);
      break;
    }
    case net::PacketType::kRequest: {
      pkt.ann.requestor = cur.i32("ann.requestor");
      pkt.ann.dist_requestor_source = cur.f64("ann.dist_requestor_source");
      if (!cur.ok()) break;
      if (!valid_node_or_none(pkt.ann.requestor))
        return DecodeError{DecodeErrorKind::kFieldOutOfRange,
                           kHeaderSize, "ann.requestor"};
      if (!valid_dist(pkt.ann.dist_requestor_source))
        return DecodeError{DecodeErrorKind::kFieldOutOfRange,
                           kHeaderSize + 4, "ann.dist_requestor_source"};
      break;
    }
    case net::PacketType::kReply:
    case net::PacketType::kExpRequest:
    case net::PacketType::kExpReply: {
      pkt.ann.requestor = cur.i32("ann.requestor");
      pkt.ann.dist_requestor_source = cur.f64("ann.dist_requestor_source");
      pkt.ann.replier = cur.i32("ann.replier");
      pkt.ann.dist_replier_requestor = cur.f64("ann.dist_replier_requestor");
      pkt.ann.turning_point = cur.i32("ann.turning_point");
      if (!cur.ok()) break;
      if (!valid_node_or_none(pkt.ann.requestor))
        return DecodeError{DecodeErrorKind::kFieldOutOfRange,
                           kHeaderSize, "ann.requestor"};
      if (!valid_dist(pkt.ann.dist_requestor_source))
        return DecodeError{DecodeErrorKind::kFieldOutOfRange,
                           kHeaderSize + 4, "ann.dist_requestor_source"};
      if (!valid_node_or_none(pkt.ann.replier))
        return DecodeError{DecodeErrorKind::kFieldOutOfRange,
                           kHeaderSize + 12, "ann.replier"};
      if (!valid_dist(pkt.ann.dist_replier_requestor))
        return DecodeError{DecodeErrorKind::kFieldOutOfRange,
                           kHeaderSize + 16, "ann.dist_replier_requestor"};
      if (!valid_node_or_none(pkt.ann.turning_point))
        return DecodeError{DecodeErrorKind::kFieldOutOfRange,
                           kHeaderSize + 24, "ann.turning_point"};
      break;
    }
  }
  cur.zeros(payload_len, "payload");
  if (!cur.ok()) return cur.error();
  if (cur.remaining() != 0)
    return DecodeError{DecodeErrorKind::kTrailingGarbage,
                       kFramePrefixSize + cur.pos(), "frame"};

  if (out) *out = std::move(pkt);
  if (consumed) *consumed = frame_len;
  return std::nullopt;
}

std::optional<DecodeError> decode_packet_exact(
    std::span<const std::uint8_t> bytes, net::Packet* out) {
  std::size_t consumed = 0;
  if (auto err = decode_packet(bytes, out, &consumed)) return err;
  if (consumed < bytes.size())
    return DecodeError{DecodeErrorKind::kTrailingGarbage, consumed, "buffer"};
  return std::nullopt;
}

bool Decoder::next(net::Packet* out) {
  if (error_ || pos_ >= buf_.size()) return false;
  std::size_t consumed = 0;
  if (auto err = decode_packet(buf_.subspan(pos_), out, &consumed)) {
    err->offset += pos_;
    error_ = err;
    return false;
  }
  pos_ += consumed;
  ++frames_;
  return true;
}

}  // namespace cesrm::wire
