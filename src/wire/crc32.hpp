// crc32.hpp — CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// The checksum that frames durable-journal records (src/durable): cheap,
// table-driven, dependency-free, and stable across platforms. This is an
// error-*detection* code for torn writes and bit rot, not a cryptographic
// integrity primitive — the journal trusts its own disk, not an attacker.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace cesrm::wire {

/// CRC-32 of `bytes`, continuing from `seed` (pass the previous return
/// value to checksum data arriving in pieces; the default starts fresh).
std::uint32_t crc32(std::span<const std::uint8_t> bytes,
                    std::uint32_t seed = 0);

}  // namespace cesrm::wire
