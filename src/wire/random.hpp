// random.hpp — deterministic randomized PDU generation.
//
// One generator serves three customers: the encode→decode→encode
// round-trip property tests, the structure-aware mutation fuzzer (valid
// frames are the seeds it corrupts), and `cesrm_cli wire-gen` (sample
// binary traces for the wire-dump/wire-check recipes). Generated packets
// respect the protocol construction invariants the codec validates —
// every random packet must round-trip exactly.
#pragma once

#include "net/packet.hpp"
#include "util/rng.hpp"

namespace cesrm::wire {

/// A random protocol-shaped packet of the given kind.
net::Packet random_packet_of(net::PacketType type, util::Rng& rng);

/// A random packet of a uniformly random kind.
net::Packet random_packet(util::Rng& rng);

}  // namespace cesrm::wire
