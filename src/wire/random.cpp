#include "wire/random.hpp"

#include "wire/layout.hpp"

namespace cesrm::wire {

namespace {

net::NodeId random_node(util::Rng& rng) {
  // Mostly tree-sized ids, occasionally the full validated range.
  if (rng.bernoulli(0.9))
    return static_cast<net::NodeId>(rng.uniform_int(0, 200));
  return static_cast<net::NodeId>(rng.uniform_int(0, kMaxNodeId));
}

net::SeqNo random_seq(util::Rng& rng) {
  if (rng.bernoulli(0.9)) return rng.uniform_int(0, 100000);
  return rng.uniform_int(0, kMaxSeqNo);
}

double random_dist(util::Rng& rng) {
  // Distances are one-way latency estimates: usually well under a second,
  // occasionally near the validation bound.
  if (rng.bernoulli(0.95)) return rng.uniform(0.0, 2.0);
  return rng.uniform(0.0, kMaxDistanceSeconds);
}

sim::SimTime random_time(util::Rng& rng) {
  return sim::SimTime::nanos(rng.uniform_int(0, 3600LL * 1000000000LL));
}

net::RecoveryAnnotation random_annotation(util::Rng& rng, bool full) {
  net::RecoveryAnnotation ann;
  ann.requestor = random_node(rng);
  ann.dist_requestor_source = random_dist(rng);
  if (full) {
    ann.replier = random_node(rng);
    ann.dist_replier_requestor = random_dist(rng);
    if (rng.bernoulli(0.5)) ann.turning_point = random_node(rng);
  }
  return ann;
}

}  // namespace

net::Packet random_packet_of(net::PacketType type, util::Rng& rng) {
  net::Packet p;
  p.type = type;
  p.source = random_node(rng);
  p.sender = random_node(rng);
  switch (type) {
    case net::PacketType::kData:
      p.seq = random_seq(rng);
      p.size_bytes = rng.bernoulli(0.8)
                         ? 1024
                         : static_cast<int>(rng.uniform_int(0, 4096));
      break;
    case net::PacketType::kSession: {
      auto session = std::make_shared<net::SessionPayload>();
      session->stamp = random_time(rng);
      const auto n_streams = rng.uniform_int(0, 8);
      for (std::int64_t i = 0; i < n_streams; ++i)
        session->streams.push_back(
            {random_node(rng), rng.bernoulli(0.1) ? net::kNoSeq
                                                  : random_seq(rng)});
      const auto n_echoes = rng.uniform_int(0, 16);
      for (std::int64_t i = 0; i < n_echoes; ++i)
        session->echoes.push_back(
            {random_node(rng), random_time(rng), random_time(rng)});
      p.session = std::move(session);
      break;
    }
    case net::PacketType::kRequest:
      p.seq = random_seq(rng);
      p.ann = random_annotation(rng, /*full=*/false);
      break;
    case net::PacketType::kReply:
    case net::PacketType::kExpReply:
      p.seq = random_seq(rng);
      p.size_bytes = rng.bernoulli(0.8)
                         ? 1024
                         : static_cast<int>(rng.uniform_int(0, 4096));
      p.ann = random_annotation(rng, /*full=*/true);
      break;
    case net::PacketType::kExpRequest:
      p.seq = random_seq(rng);
      p.dest = random_node(rng);
      p.ann = random_annotation(rng, /*full=*/true);
      break;
  }
  return p;
}

net::Packet random_packet(util::Rng& rng) {
  return random_packet_of(
      static_cast<net::PacketType>(
          rng.uniform_int(0, net::kPacketTypeCount - 1)),
      rng);
}

}  // namespace cesrm::wire
