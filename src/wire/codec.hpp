// codec.hpp — binary encoder/decoder for every protocol PDU.
//
// The simulator exchanges in-memory net::Packet structs whose sizes are
// *configured* (1 KB payload / 0-byte control, the paper's ns-2 setup);
// this codec gives each PDU a real, versioned little-endian frame (see
// layout.hpp) so the repo can account for what SRM/CESRM control traffic
// actually costs on a wire, and so ingress can be hardened against
// malformed bytes. Design rules:
//
//  * canonical: a Packet has exactly one encoding, and every frame the
//    decoder accepts re-encodes to the identical bytes — the property the
//    wire test suite and the mutation fuzzer enforce
//    (decode(encode(p)) == p and encode(decode(b)) == b);
//  * total: decoding never throws, never reads out of bounds, and never
//    allocates proportionally to attacker-controlled counts before
//    validating them; every rejection carries a DecodeErrorKind, the byte
//    offset, and the field name;
//  * zero-copy: the Decoder walks a caller-owned byte span with a bounded
//    cursor; only the SESSION entry vectors allocate, after their counts
//    are validated against the frame length.
//
// LMS rides on the EXP-REQUEST / EXP-REPLY frames (its directed requests
// and subcast replies reuse those PacketTypes), so the six frame kinds
// cover every message of SRM, CESRM, and the LMS baseline.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/packet.hpp"
#include "wire/layout.hpp"

namespace cesrm::wire {

/// One decode rejection: what, where, and which field.
struct DecodeError {
  DecodeErrorKind kind = DecodeErrorKind::kTruncated;
  std::size_t offset = 0;      ///< byte offset into the decoded buffer
  const char* field = "";      ///< name of the offending field
};

/// Appends the canonical encoding of `pkt` to `out`. The packet must obey
/// the protocol construction invariants (session payload present exactly
/// for SESSION frames, annotation defaulted on DATA/SESSION); the
/// convenience constructors in net/packet.hpp always do.
void encode_packet(const net::Packet& pkt, std::vector<std::uint8_t>* out);

/// The canonical encoding of `pkt` as a fresh buffer.
std::vector<std::uint8_t> encode_packet(const net::Packet& pkt);

/// Decodes exactly one frame from the start of `bytes`. On success fills
/// `*out`, sets `*consumed` (if non-null) to the frame length, and returns
/// nullopt. On failure returns the error; `*out` is unspecified.
std::optional<DecodeError> decode_packet(std::span<const std::uint8_t> bytes,
                                         net::Packet* out,
                                         std::size_t* consumed = nullptr);

/// Whole-buffer variant for datagram ingress: the buffer must contain one
/// frame and nothing else (extra bytes → kTrailingGarbage).
std::optional<DecodeError> decode_packet_exact(
    std::span<const std::uint8_t> bytes, net::Packet* out);

/// Streaming encoder with exact per-PDU byte accounting: every add() is
/// tallied per PacketType, so callers can report where the wire bytes go.
class Encoder {
 public:
  /// Appends `pkt`'s frame to the buffer; returns its size in bytes.
  std::size_t add(const net::Packet& pkt);

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

  std::uint64_t count_of(net::PacketType t) const {
    return counts_[static_cast<std::size_t>(t)];
  }
  std::uint64_t bytes_of(net::PacketType t) const {
    return bytes_[static_cast<std::size_t>(t)];
  }
  std::uint64_t total_count() const;
  std::uint64_t total_bytes() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
  std::array<std::uint64_t, net::kPacketTypeCount> counts_{};
  std::array<std::uint64_t, net::kPacketTypeCount> bytes_{};
};

/// Streaming decoder over a buffer of back-to-back frames (a binary trace
/// file, a fuzzer input). Bounds-checked and zero-copy: the span must
/// outlive the decoder.
class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> bytes) : buf_(bytes) {}

  /// Decodes the next frame into `*out`. Returns false at the clean end of
  /// the buffer or on a malformed frame — check error() to distinguish.
  /// After an error the decoder stays stopped (frames are not resynced).
  bool next(net::Packet* out);

  /// Set when next() returned false because of a malformed frame; offsets
  /// are absolute within the constructed span.
  const std::optional<DecodeError>& error() const { return error_; }

  /// True when every byte was consumed by well-formed frames.
  bool at_end() const { return pos_ == buf_.size() && !error_; }
  std::size_t offset() const { return pos_; }
  std::size_t frames_decoded() const { return frames_; }

 private:
  std::span<const std::uint8_t> buf_;
  std::size_t pos_ = 0;
  std::size_t frames_ = 0;
  std::optional<DecodeError> error_;
};

}  // namespace cesrm::wire
