#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "util/check.hpp"
#include "util/json.hpp"

namespace cesrm::util {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void Sample::add(double x) {
  values_.push_back(x);
  sorted_valid_ = false;
}

double Sample::mean() const {
  if (values_.empty()) return 0.0;
  return sum() / static_cast<double>(values_.size());
}

double Sample::sum() const {
  return std::accumulate(values_.begin(), values_.end(), 0.0);
}

double Sample::min() const {
  CESRM_CHECK(!values_.empty());
  return *std::min_element(values_.begin(), values_.end());
}

double Sample::max() const {
  CESRM_CHECK(!values_.empty());
  return *std::max_element(values_.begin(), values_.end());
}

double Sample::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double m2 = 0.0;
  for (double v : values_) m2 += (v - m) * (v - m);
  return std::sqrt(m2 / static_cast<double>(values_.size() - 1));
}

void Sample::ensure_sorted() const {
  if (sorted_valid_) return;
  sorted_ = values_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double Sample::percentile(double q) const {
  CESRM_CHECK(!values_.empty());
  CESRM_CHECK(q >= 0.0 && q <= 100.0);
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_[0];
  const double rank = q / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::string Sample::summary_json() const {
  std::ostringstream os;
  os << "{\"count\":" << values_.size();
  os << ",\"mean\":";
  json_double(os, mean());
  os << ",\"min\":";
  json_double(os, empty() ? 0.0 : min());
  os << ",\"max\":";
  json_double(os, empty() ? 0.0 : max());
  os << ",\"stddev\":";
  json_double(os, stddev());
  os << ",\"p50\":";
  json_double(os, empty() ? 0.0 : percentile(50.0));
  os << ",\"p90\":";
  json_double(os, empty() ? 0.0 : percentile(90.0));
  os << ",\"p99\":";
  json_double(os, empty() ? 0.0 : percentile(99.0));
  os << "}";
  return os.str();
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  CESRM_CHECK(hi > lo);
  CESRM_CHECK(buckets > 0);
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::int64_t>(std::floor((x - lo_) / width));
  if (idx < 0) ++underflow_;
  if (idx >= static_cast<std::int64_t>(counts_.size())) ++overflow_;
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

bool Histogram::same_grid(const Histogram& other) const {
  return lo_ == other.lo_ && hi_ == other.hi_ &&
         counts_.size() == other.counts_.size();
}

void Histogram::merge(const Histogram& other) {
  CESRM_CHECK(same_grid(other));
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
}

double Histogram::bucket_lo(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const {
  return bucket_lo(i + 1);
}

std::string Histogram::to_string(std::size_t bar_width) const {
  std::ostringstream os;
  std::uint64_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    os.setf(std::ios::fixed);
    os.precision(3);
    os << "[" << bucket_lo(i) << ", " << bucket_hi(i) << ") "
       << counts_[i] << " ";
    if (peak > 0) {
      const auto bar = static_cast<std::size_t>(
          static_cast<double>(counts_[i]) / static_cast<double>(peak) *
          static_cast<double>(bar_width));
      for (std::size_t b = 0; b < bar; ++b) os << '#';
    }
    os << '\n';
  }
  return os.str();
}

std::string Histogram::to_json() const {
  std::ostringstream os;
  os << "{\"lo\":";
  json_double(os, lo_);
  os << ",\"hi\":";
  json_double(os, hi_);
  os << ",\"buckets\":[";
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (i) os << ',';
    os << counts_[i];
  }
  os << "],\"total\":" << total_ << ",\"underflow\":" << underflow_
     << ",\"overflow\":" << overflow_ << "}";
  return os.str();
}

}  // namespace cesrm::util
