#include "util/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace cesrm::util {

namespace {
// Workers in the parallel runner read the threshold on every CESRM_LOG and
// may log concurrently; relaxed atomic reads keep the disabled path cheap
// and the mutex keeps emitted lines whole (never torn mid-line).
std::atomic<LogLevel> g_threshold{LogLevel::kWarn};
std::mutex g_emit_mutex;
}

LogLevel log_threshold() { return g_threshold.load(std::memory_order_relaxed); }
void set_log_threshold(LogLevel level) {
  g_threshold.store(level, std::memory_order_relaxed);
}

LogLevel parse_log_level(const std::string& name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

namespace detail {

LogLine::LogLine(LogLevel level) : level_(level) {}

LogLine::~LogLine() {
  os_ << '\n';
  const std::string line =
      std::string("[") + log_level_name(level_) + "] " + os_.str();
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::cerr.write(line.data(), static_cast<std::streamsize>(line.size()));
}

}  // namespace detail
}  // namespace cesrm::util
