#include "util/logging.hpp"

#include <iostream>

namespace cesrm::util {

namespace {
LogLevel g_threshold = LogLevel::kWarn;
}

LogLevel log_threshold() { return g_threshold; }
void set_log_threshold(LogLevel level) { g_threshold = level; }

LogLevel parse_log_level(const std::string& name) {
  if (name == "trace") return LogLevel::kTrace;
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

namespace detail {

LogLine::LogLine(LogLevel level) : level_(level) {}

LogLine::~LogLine() {
  std::cerr << '[' << log_level_name(level_) << "] " << os_.str() << '\n';
}

}  // namespace detail
}  // namespace cesrm::util
