#include "util/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

#include "util/enum_names.hpp"

namespace cesrm::util {

namespace {
// Workers in the parallel runner read the threshold on every CESRM_LOG and
// may log concurrently; relaxed atomic reads keep the disabled path cheap
// and the mutex keeps emitted lines whole (never torn mid-line).
std::atomic<LogLevel> g_threshold{LogLevel::kWarn};
std::mutex g_emit_mutex;

constexpr EnumNames<LogLevel, 6> kLogLevelNames{
    "log level",
    {{{LogLevel::kTrace, "trace"},
      {LogLevel::kDebug, "debug"},
      {LogLevel::kInfo, "info"},
      {LogLevel::kWarn, "warn"},
      {LogLevel::kError, "error"},
      {LogLevel::kOff, "off"}}}};
}

LogLevel log_threshold() { return g_threshold.load(std::memory_order_relaxed); }
void set_log_threshold(LogLevel level) {
  g_threshold.store(level, std::memory_order_relaxed);
}

LogLevel parse_log_level(const std::string& name) {
  return kLogLevelNames.try_parse(name).value_or(LogLevel::kWarn);
}

std::optional<LogLevel> try_parse_log_level(const std::string& name) {
  return kLogLevelNames.try_parse(name);
}

std::string log_level_spellings() { return kLogLevelNames.joined_names(); }

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

namespace detail {

LogLine::LogLine(LogLevel level) : level_(level) {}

LogLine::~LogLine() {
  os_ << '\n';
  const std::string line =
      std::string("[") + log_level_name(level_) + "] " + os_.str();
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::cerr.write(line.data(), static_cast<std::streamsize>(line.size()));
}

}  // namespace detail
}  // namespace cesrm::util
