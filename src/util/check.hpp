// check.hpp — lightweight invariant-checking macros.
//
// CESRM_CHECK is always on (simulation correctness beats a few branches);
// CESRM_DCHECK compiles out in NDEBUG builds. Failures throw
// cesrm::util::CheckError so tests can assert on violations and long
// experiment drivers can fail a single trace without aborting the process.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace cesrm::util {

/// Thrown when a CESRM_CHECK condition is violated.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace cesrm::util

#define CESRM_CHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond))                                                           \
      ::cesrm::util::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

#define CESRM_CHECK_MSG(cond, msg)                                        \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream cesrm_check_os;                                  \
      cesrm_check_os << msg;                                              \
      ::cesrm::util::detail::check_failed(#cond, __FILE__, __LINE__,      \
                                          cesrm_check_os.str());          \
    }                                                                     \
  } while (0)

#ifdef NDEBUG
#define CESRM_DCHECK(cond) \
  do {                     \
  } while (0)
#else
#define CESRM_DCHECK(cond) CESRM_CHECK(cond)
#endif
