// rng.hpp — deterministic pseudo-random number generation.
//
// Every stochastic choice in the repository (trace generation, SRM timer
// jitter, tree construction) flows through cesrm::util::Rng so that a run
// is exactly reproducible from its seed. The generator is xoshiro256**,
// seeded via SplitMix64 — fast, high quality, and trivially forkable so
// each simulated host / link gets an independent stream.
#pragma once

#include <cstdint>
#include <vector>

namespace cesrm::util {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** deterministic PRNG with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Raw 64-bit output.
  std::uint64_t next_u64();

  /// UniformRandomBitGenerator interface (usable with <random> adaptors).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Standard-normal variate (Box–Muller; no cached spare, keeps state flat).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Picks an index in [0, weights.size()) with probability proportional
  /// to weights[i]; all weights must be >= 0 and at least one positive.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Derives an independent child generator. Forks from the same parent
  /// with different tags yield decorrelated streams.
  Rng fork(std::uint64_t tag);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace cesrm::util
