#include "util/table.hpp"

#include <algorithm>
#include <iostream>
#include <sstream>

namespace cesrm::util {

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  Row r;
  r.cells = std::move(row);
  r.rule_before = pending_rule_;
  pending_rule_ = false;
  rows_.push_back(std::move(r));
}

void TextTable::add_rule() { pending_rule_ = true; }

void TextTable::set_align(std::size_t column, Align align) {
  if (align_.size() <= column) align_.resize(column + 1, Align::kRight);
  align_[column] = align;
}

std::string TextTable::to_string() const {
  // Column widths over header + all rows.
  std::size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.cells.size());
  std::vector<std::size_t> width(cols, 0);
  auto grow = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c)
      width[c] = std::max(width[c], cells[c].size());
  };
  grow(header_);
  for (const auto& r : rows_) grow(r.cells);

  auto pad = [&](const std::string& s, std::size_t c) {
    const Align a = c < align_.size() ? align_[c] : Align::kRight;
    std::string out;
    const std::size_t fill = width[c] - std::min(width[c], s.size());
    if (a == Align::kRight) out.append(fill, ' ');
    out += s;
    if (a == Align::kLeft) out.append(fill, ' ');
    return out;
  };

  std::ostringstream os;
  auto rule = [&] {
    for (std::size_t c = 0; c < cols; ++c) {
      os << std::string(width[c] + 2, '-');
      if (c + 1 < cols) os << '+';
    }
    os << '\n';
  };
  if (!title_.empty()) os << title_ << '\n';
  if (!header_.empty()) {
    for (std::size_t c = 0; c < cols; ++c) {
      os << ' ' << pad(c < header_.size() ? header_[c] : "", c) << ' ';
      if (c + 1 < cols) os << '|';
    }
    os << '\n';
    rule();
  }
  for (const auto& r : rows_) {
    if (r.rule_before) rule();
    for (std::size_t c = 0; c < cols; ++c) {
      os << ' ' << pad(c < r.cells.size() ? r.cells[c] : "", c) << ' ';
      if (c + 1 < cols) os << '|';
    }
    os << '\n';
  }
  return os.str();
}

void TextTable::print() const { std::cout << to_string() << std::flush; }

}  // namespace cesrm::util
