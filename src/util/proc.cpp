#include "util/proc.hpp"

#include <fstream>
#include <sstream>
#include <string>

namespace cesrm::util {

std::optional<std::uint64_t> parse_vm_hwm(std::istream& status) {
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) != 0) continue;
    std::istringstream fields(line.substr(6));
    std::uint64_t kb = 0;
    if (!(fields >> kb)) return std::nullopt;  // "VmHWM:" with no number
    return kb * 1024;
  }
  return std::nullopt;
}

std::optional<std::uint64_t> peak_rss_bytes() {
  std::ifstream status("/proc/self/status");
  if (!status) return std::nullopt;
  return parse_vm_hwm(status);
}

}  // namespace cesrm::util
