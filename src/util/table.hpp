// table.hpp — ASCII table renderer used by the bench binaries to print the
// paper's tables/figure series as aligned text.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cesrm::util {

/// Column alignment for TextTable cells.
enum class Align { kLeft, kRight };

/// A simple monospaced table. Add a header row once, then data rows; cells
/// are strings (format numbers with strings.hpp helpers). Rendering pads
/// every column to its widest cell.
class TextTable {
 public:
  /// `title` prints above the table; pass "" to omit.
  explicit TextTable(std::string title = "");

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);
  /// Inserts a horizontal rule before the next added row.
  void add_rule();

  /// Column alignment (defaults to right, which suits numeric tables).
  void set_align(std::size_t column, Align align);

  std::size_t row_count() const { return rows_.size(); }

  std::string to_string() const;
  /// Convenience: streams to stdout.
  void print() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  std::vector<Align> align_;
  bool pending_rule_ = false;
};

}  // namespace cesrm::util
