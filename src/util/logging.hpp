// logging.hpp — leveled logging with a process-global threshold.
//
// Simulation code logs through CESRM_LOG(level) streams. The default
// threshold is kWarn so experiment binaries stay quiet; tests and examples
// raise it for debugging. Each simulator is single-threaded, but the
// parallel runner executes many simulators at once, so the threshold is
// atomic and line emission is serialized — concurrent workers never tear
// each other's lines.
#pragma once

#include <optional>
#include <sstream>
#include <string>

namespace cesrm::util {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Returns/updates the global threshold; messages below it are dropped.
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

/// Parses "trace"/"debug"/"info"/"warn"/"error"/"off"; defaults to kWarn.
LogLevel parse_log_level(const std::string& name);

/// Strict parse: nullopt on an unknown spelling, so CLI front-ends can
/// name the flag and list log_level_spellings() instead of silently
/// falling back to kWarn.
std::optional<LogLevel> try_parse_log_level(const std::string& name);

/// "trace, debug, info, warn, error, off" — for flag help and errors.
std::string log_level_spellings();

const char* log_level_name(LogLevel level);

namespace detail {
/// Terminal object: accumulates a message and emits it on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level);
  ~LogLine();
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace cesrm::util

#define CESRM_LOG(level)                                      \
  if (static_cast<int>(level) <                               \
      static_cast<int>(::cesrm::util::log_threshold())) {     \
  } else                                                      \
    ::cesrm::util::detail::LogLine(level)

#define CESRM_LOG_DEBUG CESRM_LOG(::cesrm::util::LogLevel::kDebug)
#define CESRM_LOG_INFO CESRM_LOG(::cesrm::util::LogLevel::kInfo)
#define CESRM_LOG_WARN CESRM_LOG(::cesrm::util::LogLevel::kWarn)
#define CESRM_LOG_ERROR CESRM_LOG(::cesrm::util::LogLevel::kError)
