// strings.hpp — small string utilities shared by serialization, CLI
// parsing and report formatting. Kept dependency-free.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cesrm::util {

/// Splits `s` on `sep`, keeping empty fields ("a,,b" → {"a","","b"}).
std::vector<std::string> split(std::string_view s, char sep);

/// Splits on any run of whitespace, dropping empty fields.
std::vector<std::string> split_ws(std::string_view s);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Strict integer / double parsing: the whole trimmed token must parse.
std::optional<std::int64_t> parse_int(std::string_view s);
std::optional<double> parse_double(std::string_view s);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Formats a double with `digits` fixed decimals (report helper).
std::string fmt_fixed(double v, int digits);

/// Formats `count` with thousands separators: 1234567 → "1,234,567".
std::string fmt_count(std::uint64_t count);

/// Renders seconds as "h:mm:ss" (Table 1 duration column format).
std::string fmt_duration_hms(double seconds);

}  // namespace cesrm::util
