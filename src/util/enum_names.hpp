// enum_names.hpp — one shared spelling table for CLI-facing enums.
//
// Every enum that crosses a command-line flag (expedition policy, cache
// policy, protocol, ...) wants the same four operations: value → name,
// the comma-joined list of accepted spellings for --help text, a lenient
// parse returning nullopt, and a strict parse that throws CheckError with
// a uniform "unknown <what> '<spelling>' (valid: ...)" message. Declare
// the table once and get all four:
//
//   constexpr util::EnumNames<Color, 2> kColorNames{
//       "color", {{{Color::kRed, "red"}, {Color::kBlue, "blue"}}}};
//   kColorNames.name(Color::kRed);   // "red"
//   kColorNames.parse("mauve");      // throws: unknown color 'mauve'
//                                    //   (valid: red, blue)
#pragma once

#include <array>
#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "util/check.hpp"

namespace cesrm::util {

template <typename E>
struct EnumSpelling {
  E value;
  const char* name;
};

template <typename E, std::size_t N>
class EnumNames {
 public:
  static_assert(N >= 1, "an enum spelling table cannot be empty");

  constexpr EnumNames(const char* what,
                      std::array<EnumSpelling<E>, N> spellings)
      : what_(what), spellings_(spellings) {}

  /// The canonical spelling of `value` ("?" for values not in the table).
  constexpr const char* name(E value) const {
    for (const auto& s : spellings_)
      if (s.value == value) return s.name;
    return "?";
  }

  /// All accepted spellings, comma-joined — for errors and --help.
  std::string joined_names() const {
    std::string out;
    for (const auto& s : spellings_) {
      if (!out.empty()) out += ", ";
      out += s.name;
    }
    return out;
  }

  /// Parses a spelling; nullopt when `name` matches no table entry.
  constexpr std::optional<E> try_parse(std::string_view name) const {
    for (const auto& s : spellings_)
      if (name == s.name) return s.value;
    return std::nullopt;
  }

  /// Parses a spelling; throws util::CheckError listing the valid
  /// spellings otherwise (CLI front-ends catch it and print `error: ...`).
  E parse(std::string_view name) const {
    if (auto value = try_parse(name)) return *value;
    throw CheckError("unknown " + std::string(what_) + " '" +
                     std::string(name) + "' (valid: " + joined_names() + ")");
  }

  constexpr std::size_t size() const { return N; }
  constexpr const std::array<EnumSpelling<E>, N>& spellings() const {
    return spellings_;
  }

 private:
  const char* what_;  ///< noun used in parse errors, e.g. "cache policy"
  std::array<EnumSpelling<E>, N> spellings_;
};

}  // namespace cesrm::util
