// cli.hpp — tiny declarative command-line flag parser for examples and
// bench binaries. Supports --name=value, --name value, and boolean
// --flag / --no-flag forms, plus automatic --help text.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace cesrm::util {

/// Declarative flag set. Register flags with defaults, call parse(), then
/// read typed values. Unknown flags are an error; positional arguments are
/// collected in positional().
class CliFlags {
 public:
  explicit CliFlags(std::string program_description = "");

  void add_int(const std::string& name, std::int64_t default_value,
               const std::string& help);
  void add_double(const std::string& name, double default_value,
                  const std::string& help);
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);
  void add_bool(const std::string& name, bool default_value,
                const std::string& help);

  /// Parses argv. Returns false (after printing usage) on --help or on a
  /// parse error; the caller should exit in that case.
  bool parse(int argc, const char* const* argv);

  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  std::string get_string(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }
  std::string usage() const;

 private:
  enum class Type { kInt, kDouble, kString, kBool };
  struct Flag {
    Type type;
    std::string help;
    std::string value;  // canonical string form
  };

  const Flag& flag(const std::string& name, Type type) const;
  bool set_value(const std::string& name, const std::string& value);

  std::string description_;
  std::string program_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace cesrm::util
