#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <sstream>

namespace cesrm::util {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::optional<std::int64_t> parse_int(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  std::int64_t value = 0;
  const auto* begin = s.data();
  const auto* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  // std::from_chars for double is not universally available; use strtod on
  // a bounded copy.
  std::string copy(s);
  char* endp = nullptr;
  const double value = std::strtod(copy.c_str(), &endp);
  if (endp != copy.c_str() + copy.size()) return std::nullopt;
  return value;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string fmt_fixed(double v, int digits) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(digits);
  os << v;
  return os.str();
}

std::string fmt_count(std::uint64_t count) {
  std::string digits = std::to_string(count);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t first = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first) % 3 == 0 && i >= first) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string fmt_duration_hms(double seconds) {
  const auto total = static_cast<std::int64_t>(std::llround(seconds));
  const std::int64_t h = total / 3600;
  const std::int64_t m = (total % 3600) / 60;
  const std::int64_t s = total % 60;
  std::ostringstream os;
  os << h << ':';
  if (m < 10) os << '0';
  os << m << ':';
  if (s < 10) os << '0';
  os << s;
  return os.str();
}

}  // namespace cesrm::util
