#include "util/rng.hpp"

#include <cmath>

#include "util/check.hpp"

namespace cesrm::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
  // All-zero state is the one invalid state for xoshiro; SplitMix64 cannot
  // produce four consecutive zeros from any seed, but guard regardless.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits → uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  CESRM_CHECK(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % span);
  std::uint64_t x = next_u64();
  while (x >= limit) x = next_u64();
  return lo + static_cast<std::int64_t>(x % span);
}

double Rng::uniform(double lo, double hi) {
  CESRM_CHECK(lo <= hi);
  return lo + (hi - lo) * next_double();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::exponential(double mean) {
  CESRM_CHECK(mean > 0.0);
  double u = next_double();
  while (u <= 0.0) u = next_double();
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1 = next_double();
  while (u1 <= 0.0) u1 = next_double();
  const double u2 = next_double();
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(2.0 * 3.14159265358979323846 * u2);
  return mean + stddev * z;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  CESRM_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    CESRM_CHECK(w >= 0.0);
    total += w;
  }
  CESRM_CHECK(total > 0.0);
  double x = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (x < weights[i]) return i;
    x -= weights[i];
  }
  // Floating-point edge: land on the last positive weight.
  for (std::size_t i = weights.size(); i-- > 0;)
    if (weights[i] > 0.0) return i;
  return weights.size() - 1;
}

Rng Rng::fork(std::uint64_t tag) {
  // Mix the tag with fresh output so forks with distinct tags differ even
  // when taken from identical parent states.
  std::uint64_t sm = next_u64() ^ (tag * 0xD1342543DE82EF95ULL + 0x2545F4914F6CDD1DULL);
  return Rng(splitmix64(sm));
}

}  // namespace cesrm::util
