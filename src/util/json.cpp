#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <locale>
#include <sstream>

namespace cesrm::util {

void json_escape(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void json_double(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  std::ostringstream tmp;  // shortest locale-independent representation
  tmp.imbue(std::locale::classic());
  tmp.precision(17);
  tmp << v;
  os << tmp.str();
}

}  // namespace cesrm::util
