#include "util/cli.hpp"

#include <iostream>
#include <sstream>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace cesrm::util {

CliFlags::CliFlags(std::string program_description)
    : description_(std::move(program_description)) {}

void CliFlags::add_int(const std::string& name, std::int64_t default_value,
                       const std::string& help) {
  flags_[name] = Flag{Type::kInt, help, std::to_string(default_value)};
}

void CliFlags::add_double(const std::string& name, double default_value,
                          const std::string& help) {
  std::ostringstream os;
  os << default_value;
  flags_[name] = Flag{Type::kDouble, help, os.str()};
}

void CliFlags::add_string(const std::string& name,
                          const std::string& default_value,
                          const std::string& help) {
  flags_[name] = Flag{Type::kString, help, default_value};
}

void CliFlags::add_bool(const std::string& name, bool default_value,
                        const std::string& help) {
  flags_[name] = Flag{Type::kBool, help, default_value ? "true" : "false"};
}

bool CliFlags::set_value(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) return false;
  switch (it->second.type) {
    case Type::kInt:
      if (!parse_int(value)) return false;
      break;
    case Type::kDouble:
      if (!parse_double(value)) return false;
      break;
    case Type::kBool:
      if (value != "true" && value != "false") return false;
      break;
    case Type::kString:
      break;
  }
  it->second.value = value;
  return true;
}

bool CliFlags::parse(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage();
      return false;
    }
    if (!starts_with(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::string name;
    std::string value;
    bool has_value = false;
    if (const auto eq = body.find('='); eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    } else {
      name = body;
    }
    auto it = flags_.find(name);
    if (it == flags_.end() && starts_with(name, "no-")) {
      // --no-flag form for booleans.
      const std::string base = name.substr(3);
      auto bit = flags_.find(base);
      if (bit != flags_.end() && bit->second.type == Type::kBool && !has_value) {
        bit->second.value = "false";
        continue;
      }
    }
    if (it == flags_.end()) {
      std::cerr << "unknown flag --" << name << "\n" << usage();
      return false;
    }
    if (!has_value) {
      if (it->second.type == Type::kBool) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::cerr << "flag --" << name << " needs a value\n" << usage();
        return false;
      }
    }
    if (!set_value(name, value)) {
      std::cerr << "bad value for --" << name << ": '" << value << "'\n"
                << usage();
      return false;
    }
  }
  return true;
}

const CliFlags::Flag& CliFlags::flag(const std::string& name,
                                     Type type) const {
  auto it = flags_.find(name);
  CESRM_CHECK_MSG(it != flags_.end(), "flag not registered: " << name);
  CESRM_CHECK_MSG(it->second.type == type, "flag type mismatch: " << name);
  return it->second;
}

std::int64_t CliFlags::get_int(const std::string& name) const {
  return *parse_int(flag(name, Type::kInt).value);
}

double CliFlags::get_double(const std::string& name) const {
  return *parse_double(flag(name, Type::kDouble).value);
}

std::string CliFlags::get_string(const std::string& name) const {
  return flag(name, Type::kString).value;
}

bool CliFlags::get_bool(const std::string& name) const {
  return flag(name, Type::kBool).value == "true";
}

std::string CliFlags::usage() const {
  std::ostringstream os;
  if (!description_.empty()) os << description_ << "\n";
  os << "usage: " << (program_.empty() ? "program" : program_)
     << " [--flag=value ...]\n";
  for (const auto& [name, f] : flags_) {
    os << "  --" << name;
    switch (f.type) {
      case Type::kInt: os << " <int>"; break;
      case Type::kDouble: os << " <float>"; break;
      case Type::kString: os << " <string>"; break;
      case Type::kBool: os << " (bool)"; break;
    }
    os << "  " << f.help << " (default: " << f.value << ")\n";
  }
  return os.str();
}

}  // namespace cesrm::util
