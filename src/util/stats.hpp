// stats.hpp — online and batch statistics used by the experiment harness.
//
// OnlineStats accumulates mean/variance/extrema in O(1) space (Welford's
// algorithm). Sample keeps the raw values for percentile queries — trace
// experiments hold at most a few hundred thousand recovery records, so the
// memory cost is negligible. Histogram buckets values on a fixed linear
// grid for distribution printing in benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cesrm::util {

/// Streaming mean / variance / min / max accumulator (Welford).
class OnlineStats {
 public:
  void add(double x);
  /// Merges another accumulator (parallel-friendly Chan et al. update).
  void merge(const OnlineStats& other);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  /// Mean of the observations; 0 when empty.
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 with fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Value-retaining sample supporting exact percentiles.
class Sample {
 public:
  void add(double x);
  void reserve(std::size_t n) { values_.reserve(n); }

  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }
  double mean() const;
  double min() const;
  double max() const;
  double sum() const;
  double stddev() const;

  /// Exact percentile by linear interpolation between order statistics.
  /// `q` in [0, 100]. Requires a non-empty sample.
  double percentile(double q) const;
  double median() const { return percentile(50.0); }

  /// JSON summary object (count/mean/min/max/stddev/p50/p90/p99) — the
  /// machine-readable companion every exporter shares (util/json.hpp
  /// formatting, so it splices into harness/reports.cpp documents).
  std::string summary_json() const;

  const std::vector<double>& values() const { return values_; }

 private:
  void ensure_sorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Fixed-grid linear histogram over [lo, hi); out-of-range values clamp to
/// the edge buckets so counts are never dropped, but each clamp is also
/// tallied in underflow()/overflow() so exported distributions can state
/// honestly how much mass the edge buckets absorbed.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;
  std::uint64_t total() const { return total_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  /// Observations below lo (clamped into the first bucket).
  std::uint64_t underflow() const { return underflow_; }
  /// Observations at or above hi (clamped into the last bucket).
  std::uint64_t overflow() const { return overflow_; }

  /// True when `other` shares this histogram's grid (lo, hi, buckets) —
  /// the precondition of merge().
  bool same_grid(const Histogram& other) const;
  /// Bucket-wise accumulation of an identically-gridded histogram
  /// (parallel-runner metric merging). CHECK-fails on a grid mismatch.
  void merge(const Histogram& other);

  /// Multi-line ASCII rendering (one row per bucket with a proportional bar).
  std::string to_string(std::size_t bar_width = 40) const;

  /// JSON object: grid, bucket counts, total, and the under/overflow
  /// tallies (util/json.hpp formatting, shared with harness/reports.cpp).
  std::string to_json() const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

}  // namespace cesrm::util
