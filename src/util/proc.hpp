// proc.hpp — /proc/self introspection helpers.
//
// Peak resident set size comes from the VmHWM line of /proc/self/status,
// which only Linux provides. Callers must treat the reading as optional:
// on platforms (or sandboxes) without it, reporting a hard 0 would look
// like a real measurement and silently poison bench artifacts, so the API
// returns nullopt and the bench layer emits JSON null plus a one-line
// warning instead.
#pragma once

#include <cstdint>
#include <istream>
#include <optional>

namespace cesrm::util {

/// Parses a /proc/self/status-shaped stream and returns the VmHWM value
/// in bytes; nullopt when no well-formed VmHWM line is present.
std::optional<std::uint64_t> parse_vm_hwm(std::istream& status);

/// Peak resident set size of this process in bytes; nullopt when
/// /proc/self/status or its VmHWM line is unavailable (non-Linux).
std::optional<std::uint64_t> peak_rss_bytes();

}  // namespace cesrm::util
