// json.hpp — the one JSON emission path shared by every exporter.
//
// Hand-rolled JSON writing is scattered risk: escaping, locale-dependent
// number formatting, and NaN handling must agree between the harness
// result sink, the metrics/stats exporters, and the trace-event writers
// or downstream tooling breaks on exactly one of them. These helpers are
// that single agreed-upon path: strings escape per RFC 8259, doubles
// print in the classic locale with shortest round-trip precision, and
// non-finite doubles become null (JSON has no Inf/NaN).
#pragma once

#include <ostream>
#include <string_view>

namespace cesrm::util {

/// Writes `s` as a quoted, escaped JSON string.
void json_escape(std::ostream& os, std::string_view s);

/// Writes `v` locale-independently; non-finite values become null.
void json_double(std::ostream& os, double v);

}  // namespace cesrm::util
