#include "srm/adaptive.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace cesrm::srm {

AdaptiveController::AdaptiveController(double deterministic,
                                       double probabilistic,
                                       AdaptiveTuning tuning)
    : tuning_(tuning), det_(deterministic), prob_(probabilistic) {
  CESRM_CHECK(deterministic >= 0.0);
  CESRM_CHECK(probabilistic >= 0.0);
  det_ = std::clamp(det_, tuning_.det_min, tuning_.det_max);
  prob_ = std::clamp(prob_, tuning_.prob_min, tuning_.prob_max);
}

void AdaptiveController::observe(double duplicates, double normalized_delay) {
  update_dup(duplicates);
  update_delay(normalized_delay);
  ++observations_;
  adjust();
}

void AdaptiveController::observe_duplicates(double duplicates) {
  update_dup(duplicates);
  ++observations_;
  adjust();
}

void AdaptiveController::observe_delay(double normalized_delay) {
  update_delay(normalized_delay);
  ++observations_;
  adjust();
}

void AdaptiveController::update_dup(double duplicates) {
  if (dup_samples_++ == 0)
    ave_dup_ = duplicates;
  else
    ave_dup_ += tuning_.ewma_alpha * (duplicates - ave_dup_);
}

void AdaptiveController::update_delay(double normalized_delay) {
  if (delay_samples_++ == 0)
    ave_delay_ = normalized_delay;
  else
    ave_delay_ += tuning_.ewma_alpha * (normalized_delay - ave_delay_);
}

void AdaptiveController::adjust() {
  if (ave_dup_ > tuning_.dup_target) {
    // Too many duplicates: widen both components for better suppression.
    det_ += tuning_.det_step_up;
    prob_ += tuning_.prob_step_up;
  } else if (ave_dup_ < 0.5 * tuning_.dup_target &&
             ave_delay_ > tuning_.delay_target) {
    // Suppression is comfortable but we are slow: trim the delay. The
    // probabilistic part shrinks first; the deterministic part follows
    // only when delay is well above target (mirroring Floyd et al.'s
    // conservative reduction of C1).
    prob_ -= tuning_.prob_step_down;
    if (ave_delay_ > 2.0 * tuning_.delay_target)
      det_ -= tuning_.det_step_down;
  }
  det_ = std::clamp(det_, tuning_.det_min, tuning_.det_max);
  prob_ = std::clamp(prob_, tuning_.prob_min, tuning_.prob_max);
}

}  // namespace cesrm::srm
