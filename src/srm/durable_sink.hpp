// durable_sink.hpp — the agent-side interface to durable recovery state.
//
// SrmAgent/CesrmAgent publish recovery-state changes through this
// interface as they happen (write-behind: the sink buffers and flushes on
// its own schedule); the durable store (src/durable) implements it and
// journals each event as a CRC-framed wire record. The interface lives at
// the srm layer, expressed purely in net types, so the protocol agents
// never depend on the durable library — an agent with no sink installed
// (the default) behaves bit-identically to one that predates durability.
#pragma once

#include "net/ids.hpp"
#include "net/packet.hpp"

namespace cesrm::srm {

class DurableSink {
 public:
  virtual ~DurableSink() = default;

  /// The sequence horizon of `source`'s stream advanced to `highest`.
  virtual void on_horizon(net::NodeId source, net::SeqNo highest) = 0;

  /// This member served a retransmission of (`source`, `seq`) to
  /// `requestor` (`expedited` distinguishes the CESRM unicast-request
  /// path from the multicast SRM reply path).
  virtual void on_reply_served(net::NodeId source, net::SeqNo seq,
                               net::NodeId requestor, bool expedited) = 0;

  /// The requestor/replier cache for `source`'s stream admitted or
  /// improved the tuple for `seq` carried by annotation `ann`.
  virtual void on_cache_tuple(net::NodeId source, net::SeqNo seq,
                              const net::RecoveryAnnotation& ann) = 0;
};

}  // namespace cesrm::srm
