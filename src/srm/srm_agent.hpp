// srm_agent.hpp — the Scalable Reliable Multicast protocol agent (§2).
//
// One SrmAgent instance runs at every group member. A member participates
// in any number of concurrent data *streams*, each identified by the
// NodeId of its originating source (the paper presents single-source
// transmissions "for simplicity of the exposition" but specifies
// per-source state throughout). For each stream the agent implements:
//
//  * session message exchange (periodic multicast; distance estimation via
//    DistanceTable; loss detection from advertised per-stream highest
//    sequence numbers);
//  * receiver-based loss detection from sequence-number gaps;
//  * request scheduling with deterministic + probabilistic suppression:
//    a round-k request timer is drawn uniformly from
//    2^k · [C1·d̂hs, (C1+C2)·d̂hs] (d̂hs = distance to the stream's
//    source), backed off when another host's request for the same packet
//    is heard, with back-off abstinence 2^k·C3·d̂hs limiting back-off to
//    once per round;
//  * reply scheduling with suppression: a host holding the packet draws a
//    reply timer from [D1·d̂hh', (D1+D2)·d̂hh'], cancels it when another
//    reply is heard, and observes reply abstinence D3·d̂hh' during which
//    further requests are discarded.
//
// Members can be failed mid-simulation (fail()): a failed member neither
// processes packets nor fires timers — the crash model behind the §3.3
// membership-churn experiments. fail() cancels every pending timer the
// member owns (request, reply, expedited, session), so a crashed member
// leaves no events in the simulator; any callback that nevertheless runs
// on a failed member is counted in HostStats::zombie_timer_fires, which
// the fault oracle asserts to be zero. recover() rejoins a crash-recover
// member with its reception state retained: gap detection against session
// adverts and fresh data then recovers everything missed while down.
//
// CesrmAgent (src/cesrm) derives from this class and adds the expedited
// recovery scheme through the protected virtual hooks; the base class
// implements pure SRM.
//
// Statistics are accumulated in HostStats: per-packet-type send counts and
// one RecoveryRecord per detected loss, from which the harness computes
// every figure of §4.4.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"
#include "net/transport.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"
#include "srm/adaptive.hpp"
#include "srm/config.hpp"
#include "srm/session.hpp"
#include "util/rng.hpp"
#include "wire/layout.hpp"

namespace cesrm::srm {

class DurableSink;

/// Outcome of one loss-recovery episode at one receiver.
struct RecoveryRecord {
  net::NodeId source = net::kInvalidNode;  ///< stream the packet belongs to
  net::SeqNo seq = net::kNoSeq;
  sim::SimTime detect_time;
  sim::SimTime recover_time;
  bool recovered = false;
  /// True when the packet was recovered by a CESRM expedited reply.
  bool expedited = false;
  /// Request back-off rounds used before recovery.
  int rounds = 0;
  /// Recovery latency in seconds (valid when recovered).
  double latency_seconds() const {
    return (recover_time - detect_time).to_seconds();
  }
};

/// Per-host protocol statistics (aggregated over all streams).
struct HostStats {
  std::uint64_t data_sent = 0;
  std::uint64_t session_sent = 0;
  std::uint64_t requests_sent = 0;      ///< multicast SRM repair requests
  std::uint64_t replies_sent = 0;       ///< multicast SRM repair replies
  std::uint64_t exp_requests_sent = 0;  ///< unicast expedited requests
  std::uint64_t exp_replies_sent = 0;   ///< expedited replies
  /// Expedited requests cancelled because the packet arrived within
  /// REORDER-DELAY (only possible with a non-zero delay).
  std::uint64_t exp_requests_cancelled = 0;
  std::uint64_t duplicate_replies_received = 0;
  std::uint64_t requests_received = 0;
  std::uint64_t losses_detected = 0;
  /// Losses repaired by a retransmission that arrived *before* this host
  /// had detected the loss (possible when another member's recovery —
  /// especially a CESRM expedited one — outruns gap detection). These
  /// packets never enter the recovery state machine, so they appear in no
  /// RecoveryRecord; losses_detected + repairs_before_detection equals the
  /// number of data packets this host failed to receive originally.
  std::uint64_t repairs_before_detection = 0;
  /// Timer callbacks that ran on a failed member. fail() cancels every
  /// pending timer, so this stays zero unless the cancellation hardening
  /// regresses; the fault oracle checks it.
  std::uint64_t zombie_timer_fires = 0;
  /// Losses whose recovery state was discarded because the member crashed
  /// while they were outstanding (they appear in no RecoveryRecord).
  std::uint64_t losses_abandoned_at_crash = 0;
  /// Wire frames accepted by on_wire() and dispatched into the protocol.
  std::uint64_t wire_packets_decoded = 0;
  /// Wire frames rejected by on_wire(), by decode-error kind. Malformed
  /// input is dropped at ingress — it never reaches protocol state.
  std::array<std::uint64_t, wire::kDecodeErrorKindCount> wire_decode_errors{};
  /// Total frames rejected at ingress (sum of wire_decode_errors).
  std::uint64_t wire_decode_errors_total() const {
    std::uint64_t n = 0;
    for (auto c : wire_decode_errors) n += c;
    return n;
  }
  /// Requestor/replier cache effectiveness (CESRM only; filled by
  /// CesrmAgent::finalize_stats from the per-source caches). Hits are
  /// loss detections for which the cache offered a pair; the remaining
  /// counters mirror cesrm::CacheStats.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_insertions = 0;
  std::uint64_t cache_updates = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_expirations = 0;
  std::uint64_t cache_rejects = 0;
  /// Retransmissions suppressed by the reply-dedup ledger: this member had
  /// already served the identical ⟨source, seq, requestor⟩ repair before
  /// its crash, and the durable store restored that fact (exactly-once
  /// reply semantics across a crash-restart).
  std::uint64_t retransmissions_suppressed = 0;
  /// Retransmissions re-executed *despite* a matching ledger entry —
  /// non-zero only with reply dedup disabled (the diagnostic mode the
  /// fault oracle's duplicate-retransmission detector flags).
  std::uint64_t duplicate_retransmissions_served = 0;
  std::vector<RecoveryRecord> recoveries;
};

class SrmAgent : public net::Agent {
 public:
  /// `self` must be the root (source) or a leaf (receiver) of the tree.
  /// `primary_source` names the stream the surrounding experiment is
  /// driving (usually the tree root); it seeds the known-stream set so
  /// that losses of the very first packets are detectable. Additional
  /// streams are discovered dynamically from traffic. `rng` seeds this
  /// agent's private timer-jitter stream.
  SrmAgent(sim::Simulator& sim, net::Transport& network, net::NodeId self,
           net::NodeId primary_source, const SrmConfig& config,
           util::Rng rng);
  ~SrmAgent() override;

  /// Begins periodic session-message transmission at now + offset
  /// (staggered offsets avoid synchronized session bursts).
  void start_session(sim::SimTime offset);
  /// Stops the session timer (used to drain the simulation at the end).
  void stop_session();

  /// Originates data packet `seq` on this member's own stream (stream id =
  /// this member's node id). Sequence numbers must be consecutive from 0.
  void send_data(net::SeqNo seq);

  /// Crash-stops this member (§3.3 churn experiments): all subsequent
  /// packets are ignored, every pending timer is cancelled (request,
  /// reply, expedited, session), and the recovery state of outstanding
  /// losses is discarded (counted in losses_abandoned_at_crash).
  /// Reversible only through recover().
  void fail();
  /// Rejoins a crash-recover member: reception state is retained, so gap
  /// detection against session adverts and new data recovers everything
  /// missed while down. The session restarts at now + session_offset.
  void recover(sim::SimTime session_offset = sim::SimTime::zero());
  bool failed() const { return failed_; }

  // --- durable recovery state (src/durable; see srm/durable_sink.hpp) ---
  /// Installs the write-behind sink that journals recovery-state changes
  /// (horizon advances, served replies, cache admissions). Null (the
  /// default) makes every hook a no-op — behavior is then bit-identical
  /// to an agent without durability. Non-owning; must outlive the agent.
  void set_durable_sink(DurableSink* sink) { durable_sink_ = sink; }
  /// Enables/disables the reply-dedup check at the retransmission send
  /// paths. On (the default once a ledger is restored), a repair already
  /// served before the crash is suppressed exactly once; off, it is
  /// re-served and counted in duplicate_retransmissions_served.
  void set_reply_dedup(bool on) { reply_dedup_ = on; }
  /// Discards the volatile recovery state a cold (journal-less) restart
  /// loses: the reply-dedup ledger and every sequence horizon beyond what
  /// the member's stable reception state proves (the highest packet it
  /// actually holds — application data survives a crash, protocol state
  /// does not). Called by the durable manager at crash time; a warm
  /// restart then re-learns the rest from the journal via the restore_*
  /// calls below. Virtual so CESRM can also drop its caches.
  virtual void clear_volatile_recovery_state();
  /// Journal replay (while still failed, before recover()): raises
  /// `source`'s sequence horizon to at least `highest`. Idempotent;
  /// max-merges, so duplicated/reordered journal records are harmless.
  void restore_horizon(net::NodeId source, net::SeqNo highest);
  /// Journal replay: records that this member already served the
  /// ⟨source, seq, requestor⟩ retransmission before its crash.
  void restore_served(net::NodeId source, net::SeqNo seq,
                      net::NodeId requestor);
  /// Restored-but-not-yet-consumed reply-dedup ledger entries.
  std::size_t served_ledger_size() const { return restored_served_.size(); }

  // net::Agent
  void on_packet(const net::Packet& pkt) override;

  /// Hardened wire-format ingress: decodes exactly one frame from `bytes`
  /// and dispatches it through on_packet(). Malformed input of any kind —
  /// truncation, bad magic/version, out-of-range fields, trailing bytes —
  /// is counted in HostStats::wire_decode_errors, reported as an
  /// obs::EventKind::kDecodeError trace event (detail = the error kind),
  /// and dropped without touching any protocol state. Returns true when
  /// the frame was accepted.
  bool on_wire(std::span<const std::uint8_t> bytes) override;

  net::NodeId node() const { return self_; }
  net::NodeId primary_source() const { return primary_source_; }
  /// True when this member originates `source`'s stream.
  bool originates(net::NodeId source) const { return source == self_; }

  /// True when this member holds packet `seq` of `source`'s stream (sent,
  /// received, or recovered).
  bool has_packet(net::NodeId source, net::SeqNo seq) const;
  /// Single-argument overload for the primary stream.
  bool has_packet(net::SeqNo seq) const {
    return has_packet(primary_source_, seq);
  }
  /// Highest sequence number known to exist on `source`'s stream
  /// (kNoSeq when the stream is unknown).
  net::SeqNo highest_seq(net::NodeId source) const;
  net::SeqNo highest_seq() const { return highest_seq(primary_source_); }

  /// Streams this member currently knows about, in id order.
  std::vector<net::NodeId> known_streams() const;

  const HostStats& stats() const { return stats_; }
  const DistanceTable& distances() const { return dist_; }
  DistanceTable& distances() { return dist_; }

  /// One-way distance estimate to `peer` in seconds. In oracle mode this
  /// is the true tree-path delay; otherwise the session estimate (falling
  /// back to the true delay until the first estimate arrives, mirroring
  /// the paper's "distances are accurate before transmission" warm-up).
  double distance_to(net::NodeId peer) const;

  /// Losses detected but not yet recovered, over all streams.
  std::size_t outstanding_losses() const;

  /// Known-missing packets still queued for paced re-detection after a
  /// recover() (zero whenever the member is fully caught up).
  std::size_t catch_up_pending() const {
    return catch_up_queue_.size() - catch_up_next_;
  }

  /// Outstanding losses whose request timer is not armed. The SRM request
  /// state machine keeps exactly one armed request timer per outstanding
  /// loss (it re-arms on every expiry), so a non-zero count means recovery
  /// of those packets can never make progress again — the stall condition
  /// the fault oracle's liveness watchdog checks for.
  std::size_t stalled_losses() const;

  /// Adaptive-timer controllers (null when adaptive_timers is off).
  const AdaptiveController* request_controller() const {
    return req_ctrl_.get();
  }
  const AdaptiveController* reply_controller() const {
    return rep_ctrl_.get();
  }

  /// Appends a RecoveryRecord (recovered = false) for every loss still
  /// outstanding; call once when the simulation is drained so unrecovered
  /// losses appear in the statistics. Virtual so derived protocols can
  /// fold their own aggregates (CESRM: cache counters) into HostStats.
  virtual void finalize_stats();

 protected:
  /// Request-side state for a packet this member lost.
  struct WantState {
    net::NodeId source = net::kInvalidNode;
    net::SeqNo seq = net::kNoSeq;
    int backoff = 0;  ///< k: times a request has been scheduled
    std::unique_ptr<sim::Timer> request_timer;
    sim::SimTime abstinence_until = sim::SimTime::zero();
    sim::SimTime detect_time;
    bool recovered = false;
    // --- adaptive-timer bookkeeping (Floyd et al. §V) ---
    int requests_seen = 0;  ///< own + foreign requests during this episode
    sim::SimTime first_own_request = sim::SimTime::infinity();
    // --- CESRM expedited-recovery extension state ---
    std::unique_ptr<sim::Timer> exp_timer;
    net::NodeId exp_replier = net::kInvalidNode;
    net::RecoveryAnnotation exp_ann;
  };

  /// Reply-side state for a packet this member holds.
  struct ReplyState {
    std::unique_ptr<sim::Timer> reply_timer;
    bool scheduled = false;
    net::NodeId requestor = net::kInvalidNode;
    double requestor_dist_to_src = 0.0;
    sim::SimTime abstinence_until = sim::SimTime::zero();
    sim::SimTime request_arrival;  ///< adaptive: when the reply was sched.
  };

  /// Per-stream protocol state.
  struct StreamState {
    net::NodeId source = net::kInvalidNode;
    std::vector<bool> received;             ///< indexed by seq (receivers)
    net::SeqNo highest_seq = net::kNoSeq;   ///< highest known-to-exist seq
    net::SeqNo last_sent = net::kNoSeq;     ///< originator only
    std::unordered_map<net::SeqNo, std::unique_ptr<WantState>> want;
    std::unordered_map<net::SeqNo, std::unique_ptr<ReplyState>> reply;
  };

  // --- hooks overridden by CesrmAgent ---
  /// Called once when a new loss is detected (state freshly created).
  virtual void on_loss_detected(WantState& want);
  /// Called for every received repair reply (normal or expedited), before
  /// generic processing. CESRM updates its requestor/replier cache here.
  virtual void on_reply_observed(const net::Packet& pkt);
  /// Called when a unicast expedited request arrives (CESRM only).
  virtual void on_exp_request(const net::Packet& pkt);
  /// Called when packet (`source`, `seq`) becomes locally available.
  virtual void on_packet_available(net::NodeId source, net::SeqNo seq);

  // --- shared machinery the subclass reuses ---
  StreamState& stream(net::NodeId source);
  const StreamState* find_stream(net::NodeId source) const;

  /// Detects the loss of (`source`, `seq`) if it is news; returns the
  /// state (or null if the packet is already held). `suppressed` marks
  /// detection caused by hearing another host's request: the first own
  /// request is then scheduled at back-off round 1, as if suppressed.
  WantState* detect_loss(net::NodeId source, net::SeqNo seq,
                         bool suppressed);
  /// Draws a round-k request timeout 2^k·U[C1·d̂hs, (C1+C2)·d̂hs].
  sim::SimTime draw_request_delay(net::NodeId source, int k);
  void request_timer_fired(net::NodeId source, net::SeqNo seq);
  void backoff_request(WantState& want);
  void handle_request(const net::Packet& pkt);
  void handle_reply(const net::Packet& pkt);
  void reply_timer_fired(net::NodeId source, net::SeqNo seq);
  void session_timer_fired();
  /// Releases the next catch_up_batch queued re-detections and re-arms
  /// the catch-up timer while any remain (see SrmConfig::catch_up_batch).
  void release_catch_up_batch();
  /// Everything up to `seq` exists on `source`'s stream: detect any gap.
  void note_new_sequence(net::NodeId source, net::SeqNo seq);
  void mark_received(const net::Packet& via);

  ReplyState& reply_state(net::NodeId source, net::SeqNo seq);

  /// Consults the restored reply-dedup ledger before a retransmission of
  /// (`source`, `seq`) to `requestor` goes out. Returns true when the
  /// send must be suppressed (exactly-once: the entry is consumed, the
  /// suppression counted and traced). With dedup off, returns false and
  /// counts the duplicate instead — the oracle's true-positive signal.
  bool note_already_served(net::NodeId source, net::SeqNo seq,
                           net::NodeId requestor, bool expedited);

  sim::Simulator& sim_;
  net::Transport& net_;
  const net::NodeId self_;
  const net::NodeId primary_source_;
  SrmConfig config_;
  util::Rng rng_;
  DistanceTable dist_;
  HostStats stats_;
  bool failed_ = false;

  std::map<net::NodeId, StreamState> streams_;  ///< keyed by source id
  std::unique_ptr<sim::Timer> session_timer_;
  /// Paced crash-recovery catch-up: missing packets queued at recover(),
  /// consumed front-to-back by release_catch_up_batch().
  std::vector<std::pair<net::NodeId, net::SeqNo>> catch_up_queue_;
  std::size_t catch_up_next_ = 0;
  std::unique_ptr<sim::Timer> catch_up_timer_;
  /// Set by recover(): the next sequence-horizon advance is the bulk gap
  /// of everything missed while down and is paced, not detected at once.
  bool resync_pending_ = false;
  std::unique_ptr<AdaptiveController> req_ctrl_;  ///< adaptive C1/C2
  std::unique_ptr<AdaptiveController> rep_ctrl_;  ///< adaptive D1/D2
  /// Durable-state sink (null = durability off, hooks are no-ops).
  DurableSink* durable_sink_ = nullptr;
  /// Reply-dedup ledger restored by journal replay: retransmissions this
  /// member provably served before its crash, keyed ⟨source, seq,
  /// requestor⟩. Ordered set: replay order must not depend on hashing.
  std::set<std::tuple<net::NodeId, net::SeqNo, net::NodeId>> restored_served_;
  bool reply_dedup_ = true;
};

}  // namespace cesrm::srm
