// config.hpp — SRM protocol parameters (§2, §4.3).
//
// Defaults are the paper's simulation settings, which in turn are the
// typical values of Floyd et al.: C1 = C2 = 2, C3 = 1.5, D1 = D2 = 1,
// D3 = 1.5, session period 1 s.
#pragma once

#include "sim/time.hpp"

namespace cesrm::srm {

struct SrmConfig {
  // --- request scheduling (§2.1) ---
  /// Deterministic request suppression weight: requests are delayed at
  /// least C1·d̂hs.
  double c1 = 2.0;
  /// Probabilistic request suppression weight: the request interval width
  /// is C2·d̂hs.
  double c2 = 2.0;
  /// Back-off abstinence weight: after (re)scheduling a round-k request,
  /// further requests heard within 2^k·C3·d̂hs do not back it off again.
  double c3 = 1.5;

  // --- reply scheduling (§2.2) ---
  /// Deterministic reply suppression weight (×d̂hh').
  double d1 = 1.0;
  /// Probabilistic reply suppression weight (×d̂hh').
  double d2 = 1.0;
  /// Reply abstinence weight: after sending/receiving a reply, requests
  /// arriving within D3·d̂hh' are discarded.
  double d3 = 1.5;

  // --- session protocol (§2, §4.3) ---
  sim::SimTime session_period = sim::SimTime::seconds(1);
  /// When true, hosts read exact tree-path distances from the network
  /// instead of estimating them via session timing echoes. The paper's
  /// setup (lossless, pre-converged session exchange) makes the two
  /// equivalent; the oracle is faster and useful in unit tests.
  bool oracle_distances = false;

  /// Enables Floyd et al.'s dynamic timer-parameter adjustment (ToN 1997
  /// §V): each host adapts its request parameters (seeded from C1, C2)
  /// from observed duplicate requests and request delays, and its reply
  /// parameters (seeded from D1, D2) likewise. Off by default — the CESRM
  /// paper simulates the fixed "typical settings".
  bool adaptive_timers = false;

  /// Maximum request back-off exponent; 2^k growth is capped here to keep
  /// timeouts bounded in pathological suppression storms (the paper does
  /// not bound it; 16 rounds ≈ 65 000× the base interval, far beyond any
  /// recovery observed).
  int max_backoff = 16;

  // --- crash-recovery catch-up pacing (§3.3 graceful degradation) ---
  /// A rejoining member re-detects every packet it is missing, but
  /// releases the detections in batches of catch_up_batch every
  /// catch_up_interval. Unpaced, a member returning from a long outage
  /// arms hundreds of request timers in one instant; the synchronized
  /// request burst and the reply avalanche it triggers congest
  /// bandwidth-modeled links for tens of simulated seconds. Pacing also
  /// lets multicast replies triggered by one rejoining member silently
  /// repair the others before they ever request. 0 = release everything
  /// at once (the unpaced behaviour). The defaults release ~53 requests/s
  /// — well under the ~180 replies/s the paper's 1.5 Mbps / 1 KB links
  /// can serialize, leaving headroom for the ongoing transmission.
  int catch_up_batch = 8;
  sim::SimTime catch_up_interval = sim::SimTime::millis(150);
};

}  // namespace cesrm::srm
