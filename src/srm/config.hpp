// config.hpp — SRM protocol parameters (§2, §4.3).
//
// Defaults are the paper's simulation settings, which in turn are the
// typical values of Floyd et al.: C1 = C2 = 2, C3 = 1.5, D1 = D2 = 1,
// D3 = 1.5, session period 1 s.
#pragma once

#include "sim/time.hpp"

namespace cesrm::srm {

struct SrmConfig {
  // --- request scheduling (§2.1) ---
  /// Deterministic request suppression weight: requests are delayed at
  /// least C1·d̂hs.
  double c1 = 2.0;
  /// Probabilistic request suppression weight: the request interval width
  /// is C2·d̂hs.
  double c2 = 2.0;
  /// Back-off abstinence weight: after (re)scheduling a round-k request,
  /// further requests heard within 2^k·C3·d̂hs do not back it off again.
  double c3 = 1.5;

  // --- reply scheduling (§2.2) ---
  /// Deterministic reply suppression weight (×d̂hh').
  double d1 = 1.0;
  /// Probabilistic reply suppression weight (×d̂hh').
  double d2 = 1.0;
  /// Reply abstinence weight: after sending/receiving a reply, requests
  /// arriving within D3·d̂hh' are discarded.
  double d3 = 1.5;

  // --- session protocol (§2, §4.3) ---
  sim::SimTime session_period = sim::SimTime::seconds(1);
  /// When true, hosts read exact tree-path distances from the network
  /// instead of estimating them via session timing echoes. The paper's
  /// setup (lossless, pre-converged session exchange) makes the two
  /// equivalent; the oracle is faster and useful in unit tests.
  bool oracle_distances = false;

  /// Enables Floyd et al.'s dynamic timer-parameter adjustment (ToN 1997
  /// §V): each host adapts its request parameters (seeded from C1, C2)
  /// from observed duplicate requests and request delays, and its reply
  /// parameters (seeded from D1, D2) likewise. Off by default — the CESRM
  /// paper simulates the fixed "typical settings".
  bool adaptive_timers = false;

  /// Maximum request back-off exponent; 2^k growth is capped here to keep
  /// timeouts bounded in pathological suppression storms (the paper does
  /// not bound it; 16 rounds ≈ 65 000× the base interval, far beyond any
  /// recovery observed).
  int max_backoff = 16;
};

}  // namespace cesrm::srm
