#include "srm/srm_agent.hpp"

#include <algorithm>

#include "obs/trace_recorder.hpp"
#include "srm/durable_sink.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"
#include "wire/codec.hpp"

namespace cesrm::srm {

SrmAgent::SrmAgent(sim::Simulator& sim, net::Transport& network,
                   net::NodeId self, net::NodeId primary_source,
                   const SrmConfig& config, util::Rng rng)
    : sim_(sim),
      net_(network),
      self_(self),
      primary_source_(primary_source),
      config_(config),
      rng_(rng),
      dist_(self) {
  if (config_.adaptive_timers) {
    req_ctrl_ = std::make_unique<AdaptiveController>(config_.c1, config_.c2);
    AdaptiveTuning reply_tuning;
    // Reply duplicates are observed per reply event ("was this reply a
    // duplicate of a pending one?"), so the target is a fraction.
    reply_tuning.dup_target = 0.25;
    rep_ctrl_ = std::make_unique<AdaptiveController>(config_.d1, config_.d2,
                                                     reply_tuning);
  }
  net_.attach(self_, this);
  // Seed the primary stream so losses of its very first packets are
  // detectable (every member knows the transmission exists before it
  // starts — the paper's warm-up assumption).
  stream(primary_source_);
}

SrmAgent::~SrmAgent() = default;

void SrmAgent::start_session(sim::SimTime offset) {
  if (failed_) return;
  if (!session_timer_) {
    session_timer_ =
        std::make_unique<sim::Timer>(sim_, [this] { session_timer_fired(); });
  }
  session_timer_->arm(offset);
}

void SrmAgent::stop_session() {
  if (session_timer_) session_timer_->cancel();
}

void SrmAgent::fail() {
  failed_ = true;
  // Cancel every pending event this member owns so a crashed member is
  // truly inert: no request/reply/expedited timer survives (their Timers
  // are destroyed with the per-packet state), and the session timer is
  // permanently disabled against accidental re-arming.
  if (session_timer_) session_timer_->disable();
  if (catch_up_timer_) catch_up_timer_->disable();
  catch_up_queue_.clear();
  catch_up_next_ = 0;
  for (auto& [source, s] : streams_) {
    stats_.losses_abandoned_at_crash += s.want.size();
    s.want.clear();   // request + expedited timers cancel via destructors
    s.reply.clear();  // reply timers likewise
  }
}

void SrmAgent::recover(sim::SimTime session_offset) {
  CESRM_CHECK_MSG(failed_, "recover() on a live member");
  failed_ = false;
  // The crash disabled the timers for good; start fresh ones.
  session_timer_.reset();
  catch_up_timer_.reset();
  start_session(session_offset);
  // Queue every known-missing packet for re-detection. Ordinary gap
  // detection only looks above highest_seq, so packets whose recovery was
  // in flight at crash time (fail() discarded their want state) would
  // otherwise sit in a permanent blind spot below the horizon the member
  // already knew. The queue is released in paced batches rather than
  // detected here all at once — see SrmConfig::catch_up_batch.
  for (auto& [source, s] : streams_) {
    if (originates(source)) continue;
    for (net::SeqNo seq = 0; seq <= s.highest_seq; ++seq)
      if (!has_packet(source, seq)) catch_up_queue_.emplace_back(source, seq);
  }
  // The packets missed *while* down sit above highest_seq and surface on
  // the first post-recovery data arrival or session advert; flag the next
  // horizon advance so note_new_sequence paces that bulk gap too.
  resync_pending_ = true;
  if (!catch_up_queue_.empty()) release_catch_up_batch();
}

void SrmAgent::clear_volatile_recovery_state() {
  restored_served_.clear();
  // Cold-restart horizon semantics: a journal-less process knows on
  // restart only what its stable reception state proves — the highest
  // packet it actually holds. Everything above that is volatile protocol
  // knowledge, re-learned from session adverts after rejoining (which is
  // exactly the latency a warm restore avoids).
  for (auto& [source, s] : streams_) {
    if (originates(source)) continue;
    net::SeqNo held = net::kNoSeq;
    for (std::size_t i = s.received.size(); i-- > 0;) {
      if (s.received[i]) {
        held = static_cast<net::SeqNo>(i);
        break;
      }
    }
    s.highest_seq = held;
    s.received.resize(held < 0 ? 0 : static_cast<std::size_t>(held) + 1);
  }
}

void SrmAgent::restore_horizon(net::NodeId source, net::SeqNo highest) {
  CESRM_CHECK_MSG(failed_, "restore_horizon() outside crash recovery");
  if (originates(source) || highest < 0) return;
  // A stream of a node outside this tree (journal from another group
  // layout) would make catch-up issue requests whose distance queries
  // abort the run; drop the record instead of trusting it.
  if (source < 0 || source >= static_cast<net::NodeId>(net_.tree().size()))
    return;
  StreamState& s = stream(source);
  s.highest_seq = std::max(s.highest_seq, highest);
}

void SrmAgent::restore_served(net::NodeId source, net::SeqNo seq,
                              net::NodeId requestor) {
  CESRM_CHECK_MSG(failed_, "restore_served() outside crash recovery");
  restored_served_.emplace(source, seq, requestor);
}

bool SrmAgent::note_already_served(net::NodeId source, net::SeqNo seq,
                                   net::NodeId requestor, bool expedited) {
  if (restored_served_.empty()) return false;
  const auto it = restored_served_.find({source, seq, requestor});
  if (it == restored_served_.end()) return false;
  if (!reply_dedup_) {
    // Diagnostic mode: serve the duplicate but count the violation — the
    // fault oracle's duplicate-retransmission detector fires on this.
    ++stats_.duplicate_retransmissions_served;
    return false;
  }
  // Exactly-once with liveness: consume the entry so that if the repair
  // truly never arrived, the requestor's own backed-off retry finds the
  // ledger empty and is served normally.
  restored_served_.erase(it);
  ++stats_.retransmissions_suppressed;
  if (auto* rec = sim_.recorder())
    rec->emit(sim_.now(), obs::EventKind::kRetransmissionSuppressed, self_,
              source, seq, requestor, expedited ? 1 : 0);
  return true;
}

void SrmAgent::release_catch_up_batch() {
  if (failed_) {
    ++stats_.zombie_timer_fires;
    return;
  }
  const std::size_t batch = config_.catch_up_batch > 0
                                ? static_cast<std::size_t>(config_.catch_up_batch)
                                : catch_up_queue_.size();
  std::size_t released = 0;
  while (catch_up_next_ < catch_up_queue_.size() && released < batch) {
    const auto [source, seq] = catch_up_queue_[catch_up_next_++];
    // A repair overheard since recover() — typically one triggered by
    // another member rejoining from the same outage — may have filled the
    // gap already; only still-missing packets consume batch slots.
    if (detect_loss(source, seq, /*suppressed=*/false) != nullptr) ++released;
  }
  if (catch_up_next_ < catch_up_queue_.size()) {
    if (!catch_up_timer_) {
      catch_up_timer_ = std::make_unique<sim::Timer>(
          sim_, [this] { release_catch_up_batch(); });
    }
    catch_up_timer_->arm(config_.catch_up_interval);
  } else {
    catch_up_queue_.clear();
    catch_up_next_ = 0;
  }
}

void SrmAgent::send_data(net::SeqNo seq) {
  CESRM_CHECK_MSG(!failed_, "failed member cannot transmit");
  StreamState& s = stream(self_);
  CESRM_CHECK_MSG(seq == s.last_sent + 1, "data sequence must be consecutive");
  s.last_sent = seq;
  s.highest_seq = std::max(s.highest_seq, seq);
  ++stats_.data_sent;
  net_.multicast(self_, net::make_data_packet(self_, seq));
}

SrmAgent::StreamState& SrmAgent::stream(net::NodeId source) {
  auto it = streams_.find(source);
  if (it == streams_.end()) {
    StreamState s;
    s.source = source;
    it = streams_.emplace(source, std::move(s)).first;
  }
  return it->second;
}

const SrmAgent::StreamState* SrmAgent::find_stream(net::NodeId source) const {
  const auto it = streams_.find(source);
  return it == streams_.end() ? nullptr : &it->second;
}

bool SrmAgent::has_packet(net::NodeId source, net::SeqNo seq) const {
  if (seq < 0) return false;
  const StreamState* s = find_stream(source);
  if (s == nullptr) return false;
  if (originates(source)) return seq <= s->last_sent;
  return static_cast<std::size_t>(seq) < s->received.size() &&
         s->received[static_cast<std::size_t>(seq)];
}

net::SeqNo SrmAgent::highest_seq(net::NodeId source) const {
  const StreamState* s = find_stream(source);
  return s ? s->highest_seq : net::kNoSeq;
}

std::vector<net::NodeId> SrmAgent::known_streams() const {
  std::vector<net::NodeId> out;
  for (const auto& [source, s] : streams_) out.push_back(source);
  return out;
}

double SrmAgent::distance_to(net::NodeId peer) const {
  const double truth = net_.path_delay(self_, peer).to_seconds();
  if (config_.oracle_distances) return truth;
  // Until the first session echo closes the loop, fall back to the true
  // delay — the paper's warm-up guarantees estimates exist before data
  // flows, so the fallback only matters for hosts probed very early.
  return dist_.distance(peer, truth);
}

std::size_t SrmAgent::outstanding_losses() const {
  std::size_t n = 0;
  for (const auto& [source, s] : streams_) n += s.want.size();
  return n;
}

std::size_t SrmAgent::stalled_losses() const {
  std::size_t n = 0;
  for (const auto& [source, s] : streams_)
    for (const auto& [seq, want] : s.want)
      if (!want->request_timer || !want->request_timer->armed()) ++n;
  return n;
}

void SrmAgent::finalize_stats() {
  for (auto& [source, s] : streams_) {
    for (const auto& [seq, want] : s.want) {
      RecoveryRecord rec;
      rec.source = source;
      rec.seq = seq;
      rec.detect_time = want->detect_time;
      rec.recover_time = sim::SimTime::infinity();
      rec.recovered = false;
      rec.rounds = want->backoff;
      stats_.recoveries.push_back(rec);
    }
    s.want.clear();
  }
}

// ---------------------------------------------------------------------------
// Packet dispatch
// ---------------------------------------------------------------------------

void SrmAgent::on_packet(const net::Packet& pkt) {
  if (failed_) return;  // crash-stop: the member is deaf
  switch (pkt.type) {
    case net::PacketType::kData:
      if (!originates(pkt.source)) {
        mark_received(pkt);
        note_new_sequence(pkt.source, pkt.seq);
      }
      break;
    case net::PacketType::kSession: {
      CESRM_CHECK(pkt.session != nullptr);
      dist_.on_session(pkt.sender, *pkt.session, sim_.now());
      for (const auto& advert : pkt.session->streams) {
        if (originates(advert.source) || advert.highest_seq < 0) continue;
        note_new_sequence(advert.source, advert.highest_seq);
      }
      break;
    }
    case net::PacketType::kRequest:
      handle_request(pkt);
      break;
    case net::PacketType::kReply:
    case net::PacketType::kExpReply:
      on_reply_observed(pkt);
      handle_reply(pkt);
      break;
    case net::PacketType::kExpRequest:
      on_exp_request(pkt);
      break;
  }
}

bool SrmAgent::on_wire(std::span<const std::uint8_t> bytes) {
  net::Packet pkt;
  if (auto err = wire::decode_packet_exact(bytes, &pkt)) {
    const auto kind = static_cast<std::size_t>(err->kind);
    ++stats_.wire_decode_errors[kind];
    if (auto* rec = sim_.recorder())
      rec->emit(sim_.now(), obs::EventKind::kDecodeError, self_,
                net::kInvalidNode, net::kNoSeq, net::kInvalidNode,
                static_cast<int>(err->kind));
    return false;
  }
  ++stats_.wire_packets_decoded;
  on_packet(pkt);
  return true;
}

// ---------------------------------------------------------------------------
// Loss detection
// ---------------------------------------------------------------------------

void SrmAgent::note_new_sequence(net::NodeId source, net::SeqNo seq) {
  if (originates(source)) return;
  StreamState& s = stream(source);
  if (seq <= s.highest_seq) return;
  const net::SeqNo first = s.highest_seq + 1;
  s.highest_seq = seq;
  if (durable_sink_) durable_sink_->on_horizon(source, seq);
  if (resync_pending_) {
    // First advance of the sequence horizon after recover(): the gap spans
    // everything missed while down, potentially hundreds of packets. Route
    // it through the paced catch-up queue — arming one request timer per
    // packet in a single instant synchronizes the requests, defeats reply
    // suppression, and the resulting reply implosion congests the shared
    // 1.5 Mbps links for tens of simulated seconds.
    resync_pending_ = false;
    for (net::SeqNo j = first; j <= seq; ++j)
      if (!has_packet(source, j)) catch_up_queue_.emplace_back(source, j);
    if (!(catch_up_timer_ && catch_up_timer_->armed()))
      release_catch_up_batch();
    return;
  }
  // Everything up to `seq` exists; any packet in (old highest, seq] we do
  // not hold is a fresh loss.
  for (net::SeqNo j = first; j <= seq; ++j)
    if (!has_packet(source, j)) detect_loss(source, j, /*suppressed=*/false);
}

SrmAgent::WantState* SrmAgent::detect_loss(net::NodeId source,
                                           net::SeqNo seq, bool suppressed) {
  if (originates(source) || has_packet(source, seq)) return nullptr;
  StreamState& s = stream(source);
  if (auto it = s.want.find(seq); it != s.want.end()) return it->second.get();

  auto state = std::make_unique<WantState>();
  WantState* want = state.get();
  want->source = source;
  want->seq = seq;
  want->detect_time = sim_.now();
  want->request_timer = std::make_unique<sim::Timer>(
      sim_, [this, source, seq] { request_timer_fired(source, seq); });
  ++stats_.losses_detected;
  if (auto* rec = sim_.recorder())
    rec->emit(sim_.now(), obs::EventKind::kLossDetected, self_, source, seq,
              net::kInvalidNode, suppressed ? 1 : 0);

  if (suppressed) {
    // Detected by hearing another host's request: our own request starts
    // already backed off to round 1, and the back-off abstinence period
    // for that round begins.
    want->backoff = 1;
    want->request_timer->arm(draw_request_delay(source, want->backoff));
    want->abstinence_until =
        sim_.now() + sim::SimTime::from_seconds(
                         std::ldexp(config_.c3 * distance_to(source),
                                    want->backoff));
  } else {
    want->backoff = 0;
    want->request_timer->arm(draw_request_delay(source, 0));
  }
  if (auto* rec = sim_.recorder())
    rec->emit(sim_.now(), obs::EventKind::kRequestScheduled, self_, source,
              seq, net::kInvalidNode, want->backoff);
  s.want.emplace(seq, std::move(state));
  on_loss_detected(*want);
  return want;
}

void SrmAgent::mark_received(const net::Packet& via) {
  CESRM_CHECK(!originates(via.source));
  const net::SeqNo seq = via.seq;
  if (seq < 0) return;
  StreamState& s = stream(via.source);
  if (static_cast<std::size_t>(seq) >= s.received.size())
    s.received.resize(static_cast<std::size_t>(seq) + 1, false);
  if (s.received[static_cast<std::size_t>(seq)]) {
    if (via.type == net::PacketType::kReply ||
        via.type == net::PacketType::kExpReply) {
      ++stats_.duplicate_replies_received;
      if (auto* rec = sim_.recorder())
        rec->emit(sim_.now(), obs::EventKind::kDuplicateRepair, self_,
                  via.source, seq, via.sender);
    }
    return;
  }
  s.received[static_cast<std::size_t>(seq)] = true;

  if (auto it = s.want.find(seq); it != s.want.end()) {
    WantState& want = *it->second;
    RecoveryRecord rec;
    rec.source = via.source;
    rec.seq = seq;
    rec.detect_time = want.detect_time;
    rec.recover_time = sim_.now();
    rec.recovered = true;
    rec.expedited = via.type == net::PacketType::kExpReply;
    rec.rounds = want.backoff;
    stats_.recoveries.push_back(rec);
    if (auto* recorder = sim_.recorder()) {
      // Exactly one closing event per RecoveryRecord. An expedited attempt
      // was actually sent iff the expedited timer exists and has fired
      // (still-armed means it was beaten within REORDER-DELAY).
      obs::EventKind kind = obs::EventKind::kRecovered;
      if (rec.expedited) {
        kind = obs::EventKind::kExpSuccess;
      } else if (want.exp_timer && !want.exp_timer->armed()) {
        kind = obs::EventKind::kExpFallback;
      }
      // aux carries the recovery latency so streaming consumers can fold
      // latency percentiles from the closing event alone.
      recorder->emit(sim_.now(), kind, self_, via.source, seq, via.sender,
                     rec.rounds, (sim_.now() - want.detect_time).ns());
    }
    if (want.exp_timer && want.exp_timer->armed())
      ++stats_.exp_requests_cancelled;
    // Adaptive request timers (Floyd et al. §V): feed the completed
    // episode's duplicate count and, when we requested ourselves, the
    // delay our timer contributed (in units of d̂hs).
    if (req_ctrl_ && want.requests_seen > 0) {
      const double dups = static_cast<double>(want.requests_seen - 1);
      if (want.first_own_request < sim::SimTime::infinity()) {
        const double d = distance_to(via.source);
        const double delay_norm =
            d > 0.0
                ? (want.first_own_request - want.detect_time).to_seconds() / d
                : 0.0;
        req_ctrl_->observe(dups, delay_norm);
      } else {
        req_ctrl_->observe_duplicates(dups);
      }
    }
    s.want.erase(it);  // timers cancel via destructors
  } else if (via.type == net::PacketType::kReply ||
             via.type == net::PacketType::kExpReply) {
    // A retransmission delivered a packet whose original we never saw and
    // whose loss we had not yet detected: the repair beat detection.
    ++stats_.repairs_before_detection;
    if (auto* rec = sim_.recorder())
      rec->emit(sim_.now(), obs::EventKind::kRepairBeforeDetection, self_,
                via.source, seq, via.sender);
  }
  on_packet_available(via.source, seq);
}

// ---------------------------------------------------------------------------
// Request scheduling (§2.1)
// ---------------------------------------------------------------------------

sim::SimTime SrmAgent::draw_request_delay(net::NodeId source, int k) {
  const double d = distance_to(source);
  const double c1 = req_ctrl_ ? req_ctrl_->deterministic() : config_.c1;
  const double c2 = req_ctrl_ ? req_ctrl_->probabilistic() : config_.c2;
  const double lo = c1 * d;
  const double hi = (c1 + c2) * d;
  const double scale = std::ldexp(1.0, std::min(k, config_.max_backoff));
  return sim::SimTime::from_seconds(scale * rng_.uniform(lo, hi));
}

void SrmAgent::request_timer_fired(net::NodeId source, net::SeqNo seq) {
  if (failed_) {
    ++stats_.zombie_timer_fires;
    return;
  }
  StreamState& s = stream(source);
  const auto it = s.want.find(seq);
  CESRM_CHECK_MSG(it != s.want.end(), "request timer for unknown loss");
  WantState& want = *it->second;
  CESRM_CHECK(!want.recovered);

  ++stats_.requests_sent;
  ++want.requests_seen;
  if (want.first_own_request == sim::SimTime::infinity())
    want.first_own_request = sim_.now();
  if (auto* rec = sim_.recorder())
    rec->emit(sim_.now(), obs::EventKind::kRequestSent, self_, source, seq,
              net::kInvalidNode, want.backoff);
  net_.multicast(self_, net::make_request_packet(self_, source, seq,
                                                 distance_to(source)));
  // Schedule the next round.
  want.backoff = std::min(want.backoff + 1, config_.max_backoff);
  want.request_timer->arm(draw_request_delay(source, want.backoff));
  if (auto* rec = sim_.recorder())
    rec->emit(sim_.now(), obs::EventKind::kRequestScheduled, self_, source,
              seq, net::kInvalidNode, want.backoff);
  want.abstinence_until =
      sim_.now() +
      sim::SimTime::from_seconds(
          std::ldexp(config_.c3 * distance_to(source), want.backoff));
}

void SrmAgent::backoff_request(WantState& want) {
  if (sim_.now() < want.abstinence_until)
    return;  // same recovery round: discard (§2.1 back-off abstinence)
  want.backoff = std::min(want.backoff + 1, config_.max_backoff);
  want.request_timer->arm(draw_request_delay(want.source, want.backoff));
  if (auto* rec = sim_.recorder())
    rec->emit(sim_.now(), obs::EventKind::kRequestSuppressed, self_,
              want.source, want.seq, net::kInvalidNode, want.backoff);
  want.abstinence_until =
      sim_.now() +
      sim::SimTime::from_seconds(
          std::ldexp(config_.c3 * distance_to(want.source), want.backoff));
}

void SrmAgent::handle_request(const net::Packet& pkt) {
  ++stats_.requests_received;
  if (!originates(pkt.source) && pkt.seq > 0)
    note_new_sequence(pkt.source, pkt.seq - 1);

  if (has_packet(pkt.source, pkt.seq)) {
    ReplyState& rs = reply_state(pkt.source, pkt.seq);
    if (sim_.now() < rs.abstinence_until)
      return;  // reply pending: discard the request (§2.2)
    if (rs.scheduled) return;  // a reply is already on its way
    rs.scheduled = true;
    rs.requestor = pkt.ann.requestor;
    rs.requestor_dist_to_src = pkt.ann.dist_requestor_source;
    rs.request_arrival = sim_.now();
    const double d = distance_to(rs.requestor);
    const double d1 = rep_ctrl_ ? rep_ctrl_->deterministic() : config_.d1;
    const double d2 = rep_ctrl_ ? rep_ctrl_->probabilistic() : config_.d2;
    const double lo = d1 * d;
    const double hi = (d1 + d2) * d;
    rs.reply_timer->arm(sim::SimTime::from_seconds(rng_.uniform(lo, hi)));
    if (auto* rec = sim_.recorder())
      rec->emit(sim_.now(), obs::EventKind::kRepairScheduled, self_,
                pkt.source, pkt.seq, rs.requestor);
    return;
  }

  // We share the loss. Either back off our scheduled request or, if this
  // is the first we hear of the packet, detect it in suppressed mode.
  StreamState& s = stream(pkt.source);
  if (auto it = s.want.find(pkt.seq); it != s.want.end()) {
    ++it->second->requests_seen;
    backoff_request(*it->second);
  } else if (WantState* fresh =
                 detect_loss(pkt.source, pkt.seq, /*suppressed=*/true)) {
    ++fresh->requests_seen;
  }
}

// ---------------------------------------------------------------------------
// Reply scheduling (§2.2)
// ---------------------------------------------------------------------------

SrmAgent::ReplyState& SrmAgent::reply_state(net::NodeId source,
                                            net::SeqNo seq) {
  StreamState& s = stream(source);
  auto it = s.reply.find(seq);
  if (it == s.reply.end()) {
    auto state = std::make_unique<ReplyState>();
    state->reply_timer = std::make_unique<sim::Timer>(
        sim_, [this, source, seq] { reply_timer_fired(source, seq); });
    it = s.reply.emplace(seq, std::move(state)).first;
  }
  return *it->second;
}

void SrmAgent::reply_timer_fired(net::NodeId source, net::SeqNo seq) {
  if (failed_) {
    ++stats_.zombie_timer_fires;
    return;
  }
  ReplyState& rs = reply_state(source, seq);
  CESRM_CHECK(rs.scheduled);
  rs.scheduled = false;
  CESRM_CHECK(has_packet(source, seq));

  if (note_already_served(source, seq, rs.requestor, /*expedited=*/false)) {
    // Already served before the crash: suppress the duplicate but observe
    // abstinence as if it went out, so a burst of queued requests for the
    // same repair cannot stampede this host.
    rs.abstinence_until =
        sim_.now() + sim::SimTime::from_seconds(config_.d3 *
                                                distance_to(rs.requestor));
    return;
  }

  net::RecoveryAnnotation ann;
  ann.requestor = rs.requestor;
  ann.dist_requestor_source = rs.requestor_dist_to_src;
  ann.replier = self_;
  ann.dist_replier_requestor = distance_to(rs.requestor);
  ++stats_.replies_sent;
  if (auto* rec = sim_.recorder())
    // aux: how long the reply sat in its suppression timer (§2.2 wait).
    rec->emit(sim_.now(), obs::EventKind::kRepairSent, self_, source, seq,
              rs.requestor, /*detail=*/0,
              (sim_.now() - rs.request_arrival).ns());
  if (rep_ctrl_) {
    // Our reply went out undisturbed: a duplicate-free event, plus a delay
    // sample (scheduling delay in units of d̂hh').
    const double d = distance_to(rs.requestor);
    const double delay_norm =
        d > 0.0 ? (sim_.now() - rs.request_arrival).to_seconds() / d : 0.0;
    rep_ctrl_->observe(0.0, delay_norm);
  }
  net_.multicast(self_, net::make_reply_packet(self_, source, seq, ann));
  if (durable_sink_)
    durable_sink_->on_reply_served(source, seq, rs.requestor,
                                   /*expedited=*/false);
  rs.abstinence_until =
      sim_.now() + sim::SimTime::from_seconds(config_.d3 *
                                              distance_to(rs.requestor));
}

void SrmAgent::handle_reply(const net::Packet& pkt) {
  // Suppression: cancel any scheduled reply and observe the abstinence
  // period keyed to the requestor that instigated this reply.
  ReplyState& rs = reply_state(pkt.source, pkt.seq);
  if (rep_ctrl_ && sim_.now() < rs.abstinence_until) {
    // A reply arrived while one was already pending here: a duplicate
    // event from this host's vantage point.
    rep_ctrl_->observe_duplicates(1.0);
  }
  if (rs.scheduled) {
    rs.scheduled = false;
    rs.reply_timer->cancel();
    if (auto* rec = sim_.recorder())
      rec->emit(sim_.now(), obs::EventKind::kRepairSuppressed, self_,
                pkt.source, pkt.seq, pkt.sender);
  }
  const sim::SimTime abstinence =
      sim_.now() + sim::SimTime::from_seconds(
                       config_.d3 * distance_to(pkt.ann.requestor));
  rs.abstinence_until = std::max(rs.abstinence_until, abstinence);

  if (!originates(pkt.source)) {
    mark_received(pkt);
    note_new_sequence(pkt.source, pkt.seq);
  }
}

// ---------------------------------------------------------------------------
// Session protocol
// ---------------------------------------------------------------------------

void SrmAgent::session_timer_fired() {
  if (failed_) {
    ++stats_.zombie_timer_fires;
    return;
  }
  auto payload = std::make_shared<net::SessionPayload>();
  payload->stamp = sim_.now();
  for (const auto& [source, s] : streams_) {
    const net::SeqNo highest =
        originates(source) ? s.last_sent : s.highest_seq;
    if (highest >= 0) payload->streams.push_back({source, highest});
  }
  payload->echoes = dist_.build_echoes(sim_.now());
  ++stats_.session_sent;
  if (auto* rec = sim_.recorder())
    rec->emit(sim_.now(), obs::EventKind::kSessionSent, self_,
              primary_source_);
  net_.multicast(self_, net::make_session_packet(self_, primary_source_,
                                                 std::move(payload)));
  session_timer_->arm(config_.session_period);
}

// ---------------------------------------------------------------------------
// CESRM hooks (no-ops in plain SRM)
// ---------------------------------------------------------------------------

void SrmAgent::on_loss_detected(WantState&) {}
void SrmAgent::on_reply_observed(const net::Packet&) {}
void SrmAgent::on_exp_request(const net::Packet& pkt) {
  // Plain SRM members never receive expedited requests; tolerate them
  // silently (mixed deployments fall back to normal recovery).
  (void)pkt;
}
void SrmAgent::on_packet_available(net::NodeId, net::SeqNo) {}

}  // namespace cesrm::srm
