// session_aggregate.hpp — hierarchical session-state aggregation.
//
// SRM's session machinery is flat: every member advertises its reception
// state to every other member each period, so the per-period session cost
// grows as O(members × links) — the first thing that melts at 10⁵–10⁶
// receivers. This unit gives the scale path the standard fix (hierarchical
// aggregation, as in RMTP/TMTP-style trees): members fold their session
// state into an associative-commutative integer summary, each aggregation
// point merges its children's summaries, and exactly one summary per tree
// edge flows upstream per period — O(tree nodes), independent of how many
// members sit behind each leaf.
//
// Everything in the summary is integer max/sum, so the fold is bit-exact
// regardless of association order: the hierarchical result equals the flat
// all-members fold *exactly*, which the property suite asserts against an
// O(N²) per-node reference.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "net/topology.hpp"

namespace cesrm::srm {

/// Session state of a set of members, folded to integers. The identity
/// element is the default-constructed summary (members == 0).
struct SessionSummary {
  std::uint64_t members = 0;
  /// Lowest next-expected data seq over the members (reception frontier;
  /// the root's value bounds how far the source may forget history).
  std::uint64_t min_horizon = std::numeric_limits<std::uint64_t>::max();
  /// Highest next-expected data seq over the members.
  std::uint64_t max_horizon = 0;
  /// Losses currently awaiting repair, summed.
  std::uint64_t outstanding = 0;
  /// Sum and max of the members' RTT-to-source estimates (integer ns, so
  /// the mean at any aggregation point is exact: rtt_sum_ns / members).
  std::int64_t rtt_sum_ns = 0;
  std::int64_t rtt_max_ns = 0;

  friend bool operator==(const SessionSummary&,
                         const SessionSummary&) = default;
};

/// Associative + commutative merge (max/min/sum of integers).
SessionSummary merge(const SessionSummary& a, const SessionSummary& b);

/// Hierarchical fold: returns one summary per tree node, where node v's
/// summary covers every member behind v's subtree. `leaf_summary[v]` is
/// the summary of the members attached at leaf v (identity for non-leaf
/// indices and empty leaves). One bottom-up pass — O(tree nodes) merges.
std::vector<SessionSummary> aggregate_up(
    const net::MulticastTree& tree,
    const std::vector<SessionSummary>& leaf_summary);

/// O(N²) reference: node v's summary computed by scanning *every* leaf
/// and merging those in v's subtree, one node at a time. Exists only to
/// pin aggregate_up bit-exactly in tests.
std::vector<SessionSummary> flat_reference(
    const net::MulticastTree& tree,
    const std::vector<SessionSummary>& leaf_summary);

/// Session packets per period under hierarchical aggregation: one summary
/// crosses each tree edge upstream — O(tree nodes).
std::uint64_t aggregated_session_packets(const net::MulticastTree& tree);

/// Session packets per period under flat SRM: every member's session
/// message floods every tree edge — O(members × links).
std::uint64_t flat_session_packets(const net::MulticastTree& tree,
                                   std::uint64_t members);

}  // namespace cesrm::srm
