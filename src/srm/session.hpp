// session.hpp — SRM session-message machinery (§2).
//
// Group members periodically multicast session messages serving two
// purposes: (a) inter-host distance estimation and (b) loss detection via
// the advertised highest received sequence number. DistanceTable holds the
// per-host view: for each peer, the last session stamp heard (to be echoed
// back) and the current one-way distance estimate.
//
// Estimation works by timestamp echo: A's session message carries, for
// every peer B it has heard from, the pair (stamp of B's last session
// message, how long ago A received it). When B sees its own stamp echoed
// it closes the loop: RTT = (now − stamp) − hold, d̂BA = RTT/2. With
// symmetric link delays and lossless session exchange (the paper's §4.3
// assumption) the estimate equals the true one-way tree-path delay.
#pragma once

#include <unordered_map>
#include <vector>

#include "net/ids.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"

namespace cesrm::srm {

class DistanceTable {
 public:
  explicit DistanceTable(net::NodeId self) : self_(self) {}

  /// Records the reception of a session message from `peer` stamped
  /// `stamp`, received at local time `now`, and processes any echo
  /// addressed to us (updating the distance estimate for `peer`).
  void on_session(net::NodeId peer, const net::SessionPayload& payload,
                  sim::SimTime now);

  /// Builds the echo list for our next outgoing session message.
  std::vector<net::SessionEcho> build_echoes(sim::SimTime now) const;

  /// One-way distance estimate to `peer` in seconds; `fallback` (default
  /// 0) when no estimate exists yet.
  double distance(net::NodeId peer, double fallback = 0.0) const;
  bool has_estimate(net::NodeId peer) const;

  /// Overrides the estimate (oracle mode and tests).
  void set_distance(net::NodeId peer, double seconds);

  std::size_t known_peers() const { return last_heard_.size(); }

 private:
  struct Heard {
    sim::SimTime stamp;      // peer's send timestamp
    sim::SimTime received;   // our local reception time
  };

  net::NodeId self_;
  std::unordered_map<net::NodeId, Heard> last_heard_;
  std::unordered_map<net::NodeId, double> distance_;
};

}  // namespace cesrm::srm
