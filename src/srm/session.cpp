#include "srm/session.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace cesrm::srm {

void DistanceTable::on_session(net::NodeId peer,
                               const net::SessionPayload& payload,
                               sim::SimTime now) {
  CESRM_CHECK(peer != self_);
  last_heard_[peer] = Heard{payload.stamp, now};
  for (const auto& echo : payload.echoes) {
    if (echo.peer != self_) continue;
    // RTT = (now − our stamp) − peer hold time; one-way = RTT / 2.
    const sim::SimTime rtt = (now - echo.peer_stamp) - echo.hold;
    if (rtt.is_negative()) continue;  // clock artefact; ignore
    distance_[peer] = rtt.to_seconds() / 2.0;
  }
}

std::vector<net::SessionEcho> DistanceTable::build_echoes(
    sim::SimTime now) const {
  std::vector<net::SessionEcho> echoes;
  echoes.reserve(last_heard_.size());
  for (const auto& [peer, heard] : last_heard_) {
    net::SessionEcho e;
    e.peer = peer;
    e.peer_stamp = heard.stamp;
    e.hold = now - heard.received;
    echoes.push_back(e);
  }
  // Deterministic order (unordered_map iteration is not).
  std::sort(echoes.begin(), echoes.end(),
            [](const net::SessionEcho& a, const net::SessionEcho& b) {
              return a.peer < b.peer;
            });
  return echoes;
}

double DistanceTable::distance(net::NodeId peer, double fallback) const {
  const auto it = distance_.find(peer);
  return it != distance_.end() ? it->second : fallback;
}

bool DistanceTable::has_estimate(net::NodeId peer) const {
  return distance_.count(peer) != 0;
}

void DistanceTable::set_distance(net::NodeId peer, double seconds) {
  distance_[peer] = seconds;
}

}  // namespace cesrm::srm
