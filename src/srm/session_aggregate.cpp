#include "srm/session_aggregate.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace cesrm::srm {

SessionSummary merge(const SessionSummary& a, const SessionSummary& b) {
  if (a.members == 0) return b;
  if (b.members == 0) return a;
  SessionSummary m;
  m.members = a.members + b.members;
  m.min_horizon = std::min(a.min_horizon, b.min_horizon);
  m.max_horizon = std::max(a.max_horizon, b.max_horizon);
  m.outstanding = a.outstanding + b.outstanding;
  m.rtt_sum_ns = a.rtt_sum_ns + b.rtt_sum_ns;
  m.rtt_max_ns = std::max(a.rtt_max_ns, b.rtt_max_ns);
  return m;
}

std::vector<SessionSummary> aggregate_up(
    const net::MulticastTree& tree,
    const std::vector<SessionSummary>& leaf_summary) {
  CESRM_CHECK(leaf_summary.size() == tree.size());
  std::vector<SessionSummary> out = leaf_summary;
  // Node ids carry no ancestor ordering, so fold in reverse pre-order:
  // every node precedes its descendants in a DFS, hence the reverse sweep
  // folds each child into its parent before the parent moves upstream.
  std::vector<net::NodeId> order;
  order.reserve(tree.size());
  std::vector<net::NodeId> stack{tree.root()};
  while (!stack.empty()) {
    const net::NodeId v = stack.back();
    stack.pop_back();
    order.push_back(v);
    for (net::NodeId c : tree.children(v)) stack.push_back(c);
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it)
    if (*it != tree.root())
      out[static_cast<std::size_t>(tree.parent(*it))] =
          merge(out[static_cast<std::size_t>(tree.parent(*it))],
                out[static_cast<std::size_t>(*it)]);
  return out;
}

std::vector<SessionSummary> flat_reference(
    const net::MulticastTree& tree,
    const std::vector<SessionSummary>& leaf_summary) {
  CESRM_CHECK(leaf_summary.size() == tree.size());
  std::vector<SessionSummary> out(tree.size());
  for (net::NodeId v = 0; v < static_cast<net::NodeId>(tree.size()); ++v)
    for (net::NodeId u = 0; u < static_cast<net::NodeId>(tree.size()); ++u)
      if (leaf_summary[static_cast<std::size_t>(u)].members > 0 &&
          (u == v || tree.is_ancestor(v, u)))
        out[static_cast<std::size_t>(v)] =
            merge(out[static_cast<std::size_t>(v)],
                  leaf_summary[static_cast<std::size_t>(u)]);
  return out;
}

std::uint64_t aggregated_session_packets(const net::MulticastTree& tree) {
  return static_cast<std::uint64_t>(tree.link_count());
}

std::uint64_t flat_session_packets(const net::MulticastTree& tree,
                                   std::uint64_t members) {
  return members * static_cast<std::uint64_t>(tree.link_count());
}

}  // namespace cesrm::srm
