#include "srm/receiver_block.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace cesrm::srm {
namespace {

// Distinct odd multipliers decorrelate the hash-stream dimensions.
constexpr std::uint64_t kMemberSalt = 0x9E3779B97F4A7C15ULL;
constexpr std::uint64_t kSeqSalt = 0xC2B2AE3D27D4EB4FULL;
constexpr std::uint64_t kUseSalt = 0x165667B19E3779F9ULL;
constexpr int kMaxBackoff = 5;

}  // namespace

ReceiverBlock::ReceiverBlock(sim::Simulator& sim, net::Network& network,
                             net::NodeId node, net::NodeId source,
                             ReceiverBlockConfig config, std::uint64_t seed)
    : sim_(sim),
      network_(network),
      node_(node),
      source_(source),
      config_(config),
      seed_(seed),
      rtt_(network.path_delay(node, source) * std::int64_t{2}),
      base_(config.members, 0),
      bits_(config.members, 0) {
  CESRM_CHECK_MSG(config_.members > 0, "a receiver block hosts >= 1 member");
  CESRM_CHECK_MSG(config_.member_loss >= 0.0 && config_.member_loss < 1.0,
                  "member loss probability in [0, 1)");
  network_.attach(node_, this);
}

double ReceiverBlock::hash_uniform(std::uint64_t a, std::uint64_t b,
                                   std::uint64_t c) const {
  std::uint64_t x =
      seed_ ^ (a * kMemberSalt) ^ (b * kSeqSalt) ^ (c * kUseSalt);
  return static_cast<double>(util::splitmix64(x) >> 11) * 0x1.0p-53;
}

bool ReceiverBlock::member_lost(std::uint32_t member, net::SeqNo seq) const {
  return hash_uniform(member, static_cast<std::uint64_t>(seq), 1) <
         config_.member_loss;
}

void ReceiverBlock::on_packet(const net::Packet& pkt) {
  if (pkt.source != source_) return;
  switch (pkt.type) {
    case net::PacketType::kData:
      on_data(pkt.seq);
      break;
    case net::PacketType::kReply:
    case net::PacketType::kExpReply:
      on_repair_data(pkt.seq);
      break;
    default:
      break;  // requests/sessions from peers need no block action
  }
}

void ReceiverBlock::on_data(net::SeqNo seq) {
  std::uint64_t lost = 0;
  for (std::uint32_t m = 0; m < config_.members; ++m) {
    if (member_lost(m, seq)) {
      ++lost;
      continue;  // the unset bit below base+64 is the loss record
    }
    if (!deliver(m, seq)) ++duplicate_data_;
  }
  if (lost == 0) return;
  losses_ += lost;
  // All of the block's losers notice the gap together once the reorder
  // guard passes (co-located members share the next in-order arrival).
  sim_.schedule_in(config_.reorder_guard, [this, seq] { detect_gap(seq); });
}

bool ReceiverBlock::deliver(std::uint32_t member, net::SeqNo seq) {
  const net::SeqNo base = base_[member];
  if (seq < base) return false;  // already resolved (duplicate)
  if (seq - base >= 64) {
    // The tracking window is full: the oldest unresolved seqs are being
    // starved of repairs. Force the window forward and account the
    // casualties — the scale bench gates this counter at zero.
    const net::SeqNo shift = seq - base - 63;
    window_overflows_ +=
        static_cast<std::uint64_t>(shift) -
        static_cast<std::uint64_t>(std::popcount(
            bits_[member] & ((shift >= 64) ? ~0ULL
                                           : ((1ULL << shift) - 1))));
    bits_[member] = shift >= 64 ? 0 : bits_[member] >> shift;
    base_[member] += shift;
  }
  const std::uint64_t bit = 1ULL << (seq - base_[member]);
  if (bits_[member] & bit) return false;
  bits_[member] |= bit;
  advance(member);
  return true;
}

void ReceiverBlock::advance(std::uint32_t member) {
  while (bits_[member] & 1ULL) {
    bits_[member] >>= 1;
    ++base_[member];
  }
}

void ReceiverBlock::detect_gap(net::SeqNo seq) {
  for (const Repair& r : repairs_)
    if (r.seq == seq) return;  // already outstanding
  Repair r;
  r.seq = seq;
  r.detect_at = sim_.now();
  schedule_request(r);
  repairs_.push_back(r);
}

void ReceiverBlock::schedule_request(Repair& r) {
  sim::SimTime delay;
  if (config_.expedited && cache_warm_ && r.rounds == 0) {
    // Cached requestor/replier pair: the first attempt skips the SRM
    // backoff lottery and goes straight to the replier after the reorder
    // guard (§3.1's edge). One shot only — retries rejoin the backoff
    // schedule, because retrying faster than the reply RTT just floods
    // the replier's downlink with duplicate repairs.
    delay = config_.reorder_guard;
  } else {
    const double d = rtt_.to_seconds();
    const double jitter =
        config_.c1 * d +
        config_.c2 * d *
            hash_uniform(static_cast<std::uint64_t>(r.seq), r.rounds, 2);
    delay = sim::SimTime::from_seconds(
        std::ldexp(jitter, std::min(r.rounds, kMaxBackoff)));
  }
  r.timer = sim_.schedule_in(delay, [this, seq = r.seq] {
    request_fired(seq);
  });
}

void ReceiverBlock::request_fired(net::SeqNo seq) {
  for (Repair& r : repairs_) {
    if (r.seq != seq) continue;
    ++requests_sent_;
    const bool expedite = config_.expedited && cache_warm_ && r.rounds == 0;
    ++r.rounds;
    if (expedite) {
      net::RecoveryAnnotation ann;
      ann.requestor = node_;
      ann.dist_requestor_source = network_.path_delay(node_, source_)
                                      .to_seconds();
      network_.unicast(node_, net::make_exp_request_packet(
                                  node_, source_, source_, seq, ann));
    } else {
      network_.multicast(node_, net::make_request_packet(
                                    node_, source_, seq,
                                    network_.path_delay(node_, source_)
                                        .to_seconds()));
    }
    schedule_request(r);  // retry unless a repair lands first
    return;
  }
}

void ReceiverBlock::on_repair_data(net::SeqNo seq) {
  const auto it = std::find_if(repairs_.begin(), repairs_.end(),
                               [seq](const Repair& r) { return r.seq == seq; });
  const bool pending = it != repairs_.end();
  const sim::SimTime detect_at = pending ? it->detect_at : sim_.now();
  std::uint64_t healed = 0;
  for (std::uint32_t m = 0; m < config_.members; ++m)
    if (deliver(m, seq)) ++healed;
  if (!pending) return;
  recovered_ += healed;
  for (std::uint64_t i = 0; i < healed; ++i)
    latency_.add((sim_.now() - detect_at).ns());
  sim_.cancel(it->timer);
  repairs_.erase(it);
  cache_warm_ = true;
}

std::uint64_t ReceiverBlock::outstanding() const {
  std::uint64_t n = 0;
  for (const Repair& r : repairs_)
    for (std::uint32_t m = 0; m < config_.members; ++m)
      if (base_[m] <= r.seq && r.seq - base_[m] < 64 &&
          !(bits_[m] & (1ULL << (r.seq - base_[m]))))
        ++n;
  return n;
}

SessionSummary ReceiverBlock::summary() const {
  SessionSummary s;
  s.members = config_.members;
  s.outstanding = outstanding();
  s.rtt_max_ns = rtt_.ns();
  s.rtt_sum_ns = rtt_.ns() * static_cast<std::int64_t>(config_.members);
  for (std::uint32_t m = 0; m < config_.members; ++m) {
    const auto h = static_cast<std::uint64_t>(base_[m]);
    s.min_horizon = std::min(s.min_horizon, h);
    s.max_horizon = std::max(s.max_horizon, h);
  }
  return s;
}

std::size_t ReceiverBlock::state_bytes() const {
  return base_.capacity() * sizeof(base_[0]) +
         bits_.capacity() * sizeof(bits_[0]);
}

}  // namespace cesrm::srm
