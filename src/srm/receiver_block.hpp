// receiver_block.hpp — struct-of-arrays receiver populations for the
// million-receiver scale path.
//
// A full SrmAgent costs kilobytes per member (per-stream maps, timer
// wheels, an Rng, recovery records) — fine for Table-1 topologies,
// hopeless at 10⁶ receivers. A ReceiverBlock attaches ONE net::Agent at a
// leaf and hosts F members in flat parallel arrays:
//
//  * per-member state is two machine words — `base_` (lowest unresolved
//    data seq) and `bits_` (a 64-packet reception bitmap above it) — plus
//    amortized shares of the block counters: ≤ 24 bytes/receiver, measured
//    by state_bytes() and gated by the scale bench;
//  * randomness is a stateless splitmix64 hash of ⟨block seed, member,
//    seq⟩, so members lose independently without per-member generator
//    state and identically for any shard count or replay;
//  * loss recovery is SRM-shaped but block-suppressed: the block detects a
//    gap when a later seq arrives, schedules ONE repair request for the
//    whole block with the minimum member jitter (exactly the suppression a
//    co-located SRM crowd converges to), backs off exponentially, and on
//    the retransmission marks every pending member recovered, folding each
//    member's detect→recover latency into a log-bucketed histogram;
//  * the expedited flavour models CESRM's cached requestor/replier pairs:
//    once a block has recovered a loss the cached pair short-circuits the
//    request jitter for subsequent losses (requests go out after only the
//    reorder guard), which is precisely the latency edge §3 claims;
//  * session state leaves the block pre-aggregated: summary() folds the F
//    members into one SessionSummary (srm/session_aggregate.hpp), so
//    session traffic costs one packet per block per period, not one per
//    member.
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.hpp"
#include "net/packet.hpp"
#include "obs/sketch.hpp"
#include "sim/simulator.hpp"
#include "srm/session_aggregate.hpp"

namespace cesrm::srm {

struct ReceiverBlockConfig {
  std::uint32_t members = 64;  ///< F members hosted behind this leaf
  /// Independent per-member last-hop loss probability (analytic thinning
  /// of delivered data packets; the shared tree above the leaf is modeled
  /// by the Network as usual).
  double member_loss = 0.01;
  /// CESRM mode: after the first recovery the cached pair expedites every
  /// later request (no SRM backoff wait). SRM mode ignores the cache.
  bool expedited = false;
  /// SRM request timer shape: uniform jitter in [c1, c1+c2] · rtt, doubled
  /// per backoff round (C1/C2 = 2 as in the paper's setup).
  double c1 = 2.0, c2 = 2.0;
  /// Reorder guard before a gap counts as a loss.
  sim::SimTime reorder_guard = sim::SimTime::millis(10);
};

class ReceiverBlock : public net::Agent {
 public:
  /// `node` must be a leaf of the network's tree; `seed` makes the block's
  /// hash stream unique and reproducible.
  ReceiverBlock(sim::Simulator& sim, net::Network& network, net::NodeId node,
                net::NodeId source, ReceiverBlockConfig config,
                std::uint64_t seed);

  void on_packet(const net::Packet& pkt) override;

  net::NodeId node() const { return node_; }

  /// Pre-aggregated session state of the F members (one fold per call —
  /// the caller sends it upstream as a single session packet).
  SessionSummary summary() const;

  // --- outcome accounting (over all members) ---
  std::uint64_t losses() const { return losses_; }
  std::uint64_t recovered() const { return recovered_; }
  std::uint64_t outstanding() const;
  std::uint64_t requests_sent() const { return requests_sent_; }
  std::uint64_t duplicate_data() const { return duplicate_data_; }
  /// Member-losses that fell off the 64-packet tracking window before a
  /// repair arrived (a liveness failure; the scale bench gates it at 0).
  std::uint64_t window_overflows() const { return window_overflows_; }
  /// Per-member detect→recover latencies (ns), log-bucketed.
  const obs::LogHistogram& recovery_latency() const { return latency_; }

  /// Bytes of member-proportional state (the SoA arrays; excludes the
  /// fixed per-block footprint) — the scale bench divides by F to report
  /// bytes/receiver.
  std::size_t state_bytes() const;

 private:
  struct Repair {  ///< one outstanding block-level repair request
    net::SeqNo seq = net::kNoSeq;
    sim::SimTime detect_at;
    int rounds = 0;
    sim::EventId timer{};
  };

  bool member_lost(std::uint32_t member, net::SeqNo seq) const;
  void on_data(net::SeqNo seq);
  void on_repair_data(net::SeqNo seq);
  /// Delivers seq to one member's window; returns true if it was pending.
  bool deliver(std::uint32_t member, net::SeqNo seq);
  void advance(std::uint32_t member);
  void detect_gap(net::SeqNo seq);
  void schedule_request(Repair& r);
  void request_fired(net::SeqNo seq);
  /// Stateless uniform double in [0, 1) from the block's hash stream.
  double hash_uniform(std::uint64_t a, std::uint64_t b,
                      std::uint64_t c) const;

  sim::Simulator& sim_;
  net::Network& network_;
  const net::NodeId node_;
  const net::NodeId source_;
  const ReceiverBlockConfig config_;
  const std::uint64_t seed_;
  const sim::SimTime rtt_;  ///< true RTT to the source (oracle distance)

  // --- struct-of-arrays member state (all sized config_.members) ---
  std::vector<net::SeqNo> base_;       ///< lowest unresolved seq
  std::vector<std::uint64_t> bits_;    ///< received bitmap over [base, base+64)

  std::vector<Repair> repairs_;  ///< outstanding block-level requests
  obs::LogHistogram latency_;
  std::uint64_t losses_ = 0;
  std::uint64_t recovered_ = 0;
  std::uint64_t requests_sent_ = 0;
  std::uint64_t duplicate_data_ = 0;
  std::uint64_t window_overflows_ = 0;
  bool cache_warm_ = false;  ///< CESRM: a recovered pair is cached
};

}  // namespace cesrm::srm
