// adaptive.hpp — dynamic adjustment of SRM's timer parameters.
//
// Floyd et al.'s SRM paper (ToN 1997, §V) complements the fixed timer
// parameters (the "typical settings" C1=C2=2, D1=D2=1 that the CESRM paper
// simulates) with an adaptive algorithm: each host tunes its request
// parameters from the duplicate requests and request delays it observes,
// and its reply parameters likewise. AdaptiveController implements that
// control loop in their spirit:
//
//  * after every observation window it updates exponentially weighted
//    averages of (a) duplicates per recovery exchange and (b) the host's
//    own timer delay, normalized by the relevant distance;
//  * too many duplicates → increase both the deterministic and the
//    probabilistic component (more suppression);
//  * few duplicates and high delay → trim the components (less latency);
//  * both components are clamped to sane ranges so a quiet or noisy spell
//    cannot run the parameters off to extremes.
//
// One controller instance serves the request side (seeded with C1, C2) and
// another the reply side (D1, D2) of each SrmAgent when
// SrmConfig::adaptive_timers is enabled.
#pragma once

#include <cstdint>

namespace cesrm::srm {

struct AdaptiveTuning {
  double dup_target = 1.0;    ///< acceptable duplicates per exchange
  double delay_target = 1.5;  ///< acceptable own delay (units of intervals)
  double ewma_alpha = 0.25;   ///< weight of each new observation
  double det_step_up = 0.1;   ///< deterministic component increase
  double prob_step_up = 0.5;  ///< probabilistic component increase
  double det_step_down = 0.05;
  double prob_step_down = 0.1;
  double det_min = 0.5, det_max = 4.0;
  double prob_min = 1.0, prob_max = 8.0;
};

class AdaptiveController {
 public:
  /// Seeds the controller with the static parameter pair (e.g. C1, C2).
  AdaptiveController(double deterministic, double probabilistic,
                     AdaptiveTuning tuning = {});

  /// Current deterministic component (C1 or D1).
  double deterministic() const { return det_; }
  /// Current probabilistic component (C2 or D2).
  double probabilistic() const { return prob_; }

  /// Records the duplicates observed in one completed exchange and the
  /// delay (in units of the scheduling interval base) this host's own
  /// timer contributed, then adjusts the parameters.
  void observe(double duplicates, double normalized_delay);

  /// Partial observations: update only one of the two averages (used when
  /// an exchange yields a duplicate count but this host sent nothing, or a
  /// delay sample without a completed exchange), then adjust.
  void observe_duplicates(double duplicates);
  void observe_delay(double normalized_delay);

  double average_duplicates() const { return ave_dup_; }
  double average_delay() const { return ave_delay_; }
  std::uint64_t observations() const { return observations_; }

 private:
  void adjust();
  void update_dup(double duplicates);
  void update_delay(double normalized_delay);

  AdaptiveTuning tuning_;
  double det_;
  double prob_;
  double ave_dup_ = 0.0;
  double ave_delay_ = 0.0;
  std::uint64_t observations_ = 0;       ///< total observe* calls
  std::uint64_t dup_samples_ = 0;        ///< first-sample handling per EWMA
  std::uint64_t delay_samples_ = 0;
};

}  // namespace cesrm::srm
