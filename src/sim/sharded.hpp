// sharded.hpp — conservative parallel discrete-event engine.
//
// The ShardedEngine partitions the model's scheduling locations (tree
// nodes, in this codebase) across S shards, each with its own Simulator
// (clock + 4-ary heap + slot pool), and runs them on S threads in
// lookahead windows:
//
//   W0 = min over shards of the earliest pending event
//   W1 = min(W0 + lookahead, horizon + 1 tick)
//
// Every shard executes its events with time < W1, then all shards meet at
// a barrier. Cross-shard event handoff goes through per-(src, dst) mailbox
// vectors: a shard posts {when, tag, callback} during its window and the
// destination shard drains its mailboxes into its own queue after the
// barrier, before the next window is computed. The scheme is conservative
// — correct-by-construction, no rollback — because every cross-shard
// event is a packet arrival over a link of delay >= lookahead: an event
// posted at local time t >= W0 arrives at t + lookahead >= W0 + lookahead
// >= W1, i.e. always beyond the current window, so no shard can receive
// an event for a time it has already passed.
//
// Determinism for ANY shard count (including 1) rests on the event tags
// (EventQueue::schedule_tagged). A queue's schedule sequence is an
// artifact of execution interleaving and differs across layouts, so all
// model events scheduled while processing location L carry the tag
// ⟨L, per-L counter⟩; ties at one instant then resolve by tag — a total
// order fixed by the model, not by the layout. Per-location counters are
// themselves deterministic by induction: each location's events execute
// in exactly one shard in (time, tag) order, and untagged (tag-0) events
// — setup and protocol timers, which always fire in their own location's
// shard — sort before all tagged events, with tag-0 ties at one instant
// either belonging to one location (FIFO by that location's own
// deterministic arming order) or touching disjoint per-location state.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace cesrm::sim {

class ShardedEngine {
 public:
  /// `shard_of_location[l]` maps location l to its owning shard in
  /// [0, shards). `lookahead` must be positive and no larger than the
  /// minimum cross-shard link delay (the harness passes the link delay).
  ShardedEngine(std::vector<int> shard_of_location, int shards,
                SimTime lookahead);
  ~ShardedEngine();
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  int shards() const { return shards_; }
  SimTime lookahead() const { return lookahead_; }
  int shard_of(int location) const {
    return shard_of_location_[static_cast<std::size_t>(location)];
  }

  /// The shard's simulator. Before run_until() this is the setup surface
  /// (single-threaded); during the run each shard thread owns its own.
  Simulator& sim(int shard) { return *sims_[static_cast<std::size_t>(shard)]; }

  /// The calling shard thread's simulator / shard index. Valid only on a
  /// shard thread inside run_until() (and, for convenience, on the setup
  /// thread where it resolves to shard 0's simulator with shard index 0 —
  /// setup happens before any cross-shard traffic exists).
  Simulator& current_sim() { return *sims_[current_shard_index()]; }
  int current_shard() const { return static_cast<int>(current_shard_index()); }

  /// Deterministic ordering tag for an event scheduled while processing
  /// location `from`. Call only from the shard that owns `from`.
  std::uint64_t next_tag(int from) {
    return (static_cast<std::uint64_t>(from) + 2) << kTagShift |
           ++tag_counter_[static_cast<std::size_t>(from)];
  }

  /// Schedules `cb` at `when` at location `dest`, tagged from location
  /// `from` (the location being processed). Same-shard destinations go
  /// straight into the current queue; cross-shard destinations are posted
  /// to the mailbox and drained at the window barrier — `when` must then
  /// lie at or beyond the current window's end (conservative lookahead).
  void schedule_from(int from, int dest, SimTime when,
                     EventQueue::Callback cb);

  /// Runs all shards to `horizon` (inclusive, like Simulator::run_until)
  /// on shards() threads, then clamps every shard clock to `horizon`.
  void run_until(SimTime horizon);

  // --- aggregate diagnostics (valid after run_until) ---
  std::uint64_t events_executed() const;
  std::uint64_t events_scheduled() const;
  std::uint64_t events_cancelled() const;
  std::uint64_t windows_run() const { return windows_; }
  std::uint64_t cross_shard_posts() const { return posts_; }

 private:
  static constexpr int kTagShift = 40;

  struct Posted {
    SimTime when;
    std::uint64_t tag = 0;
    EventQueue::Callback cb;
  };

  std::size_t current_shard_index() const;
  void drain_mailboxes(int me);

  std::vector<int> shard_of_location_;
  int shards_ = 1;
  SimTime lookahead_;
  std::vector<std::unique_ptr<Simulator>> sims_;
  std::vector<std::uint64_t> tag_counter_;  ///< per location, owner-written
  /// mail_[src * shards + dst]: written by src during its window, drained
  /// by dst after the barrier — the barrier is the only synchronization.
  std::vector<std::vector<Posted>> mail_;
  SimTime window_end_ = SimTime::zero();  ///< written by barrier completion
  bool done_ = false;                     ///< likewise
  std::uint64_t windows_ = 0;
  std::uint64_t posts_ = 0;  ///< summed from per-shard counts after the run
  std::vector<std::uint64_t> shard_posts_;
};

}  // namespace cesrm::sim
