#include "sim/sharded.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <exception>
#include <mutex>
#include <thread>

#include "util/check.hpp"

namespace cesrm::sim {

namespace {
/// The running shard thread's index; -1 off the engine's threads. One
/// engine runs at a time per thread tree (each experiment spawns its own
/// workers), so a plain thread_local is unambiguous.
thread_local int tls_shard = -1;
}  // namespace

ShardedEngine::ShardedEngine(std::vector<int> shard_of_location, int shards,
                             SimTime lookahead)
    : shard_of_location_(std::move(shard_of_location)),
      shards_(shards),
      lookahead_(lookahead) {
  CESRM_CHECK_MSG(shards_ >= 1, "need at least one shard");
  CESRM_CHECK_MSG(lookahead_ > SimTime::zero(),
                  "conservative windows need a positive lookahead");
  CESRM_CHECK_MSG(
      static_cast<std::uint64_t>(shard_of_location_.size()) + 2 <
          (std::uint64_t{1} << (64 - kTagShift)),
      "too many locations for the tag encoding");
  for (int s : shard_of_location_)
    CESRM_CHECK_MSG(s >= 0 && s < shards_, "location mapped to bad shard");
  sims_.reserve(static_cast<std::size_t>(shards_));
  for (int s = 0; s < shards_; ++s)
    sims_.push_back(std::make_unique<Simulator>());
  tag_counter_.assign(shard_of_location_.size(), 0);
  mail_.resize(static_cast<std::size_t>(shards_) *
               static_cast<std::size_t>(shards_));
  shard_posts_.assign(static_cast<std::size_t>(shards_), 0);
}

ShardedEngine::~ShardedEngine() = default;

std::size_t ShardedEngine::current_shard_index() const {
  return tls_shard >= 0 ? static_cast<std::size_t>(tls_shard) : 0;
}

void ShardedEngine::schedule_from(int from, int dest, SimTime when,
                                  EventQueue::Callback cb) {
  const std::uint64_t tag = next_tag(from);
  const int dst = shard_of(dest);
  const std::size_t me = current_shard_index();
  if (dst == static_cast<int>(me)) {
    sims_[me]->schedule_at_tagged(when, tag, std::move(cb));
    return;
  }
  CESRM_CHECK_MSG(when >= window_end_,
                  "cross-shard event inside the lookahead window: when="
                      << when << " window_end=" << window_end_);
  mail_[me * static_cast<std::size_t>(shards_) +
        static_cast<std::size_t>(dst)]
      .push_back(Posted{when, tag, std::move(cb)});
  ++shard_posts_[me];
}

void ShardedEngine::drain_mailboxes(int me) {
  Simulator& sim = *sims_[static_cast<std::size_t>(me)];
  for (int src = 0; src < shards_; ++src) {
    auto& box = mail_[static_cast<std::size_t>(src) *
                          static_cast<std::size_t>(shards_) +
                      static_cast<std::size_t>(me)];
    for (Posted& p : box)
      sim.schedule_at_tagged(p.when, p.tag, std::move(p.cb));
    box.clear();
  }
}

void ShardedEngine::run_until(SimTime horizon) {
  done_ = false;
  std::vector<SimTime> local_next(static_cast<std::size_t>(shards_),
                                  SimTime::infinity());
  // An exception on any shard (a CHECK tripping inside an event) must not
  // terminate or deadlock the barrier crowd: the first one is captured,
  // every shard keeps arriving, the completion step shuts the run down,
  // and the exception rethrows on the caller's thread after the join.
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mu;
  const auto capture = [&] {
    const std::lock_guard<std::mutex> lock(error_mu);
    if (!error) error = std::current_exception();
    failed.store(true, std::memory_order_relaxed);
  };

  // The completion function runs on exactly one thread while the rest
  // block, and the barrier's release sequences its writes before every
  // thread's next read — window_end_/done_ need no atomics.
  std::barrier sync(shards_, [this, &local_next, &failed, horizon]() noexcept {
    SimTime w0 = SimTime::infinity();
    for (SimTime t : local_next) w0 = std::min(w0, t);
    if (w0 > horizon || failed.load(std::memory_order_relaxed)) {
      done_ = true;
      return;
    }
    window_end_ = std::min(w0 + lookahead_, horizon + SimTime::nanos(1));
    ++windows_;
  });

  auto worker = [&](int me) {
    tls_shard = me;
    Simulator& sim = *sims_[static_cast<std::size_t>(me)];
    for (;;) {
      local_next[static_cast<std::size_t>(me)] = sim.next_event_time();
      sync.arrive_and_wait();  // completion picks the window (or done)
      if (done_) break;
      try {
        sim.run_window(window_end_);
      } catch (...) {
        capture();
      }
      sync.arrive_and_wait();  // all cross-shard posts are now visible
      try {
        drain_mailboxes(me);
      } catch (...) {
        capture();
      }
    }
    sim.advance_clock(horizon);
    tls_shard = -1;
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(shards_));
  for (int s = 0; s < shards_; ++s) threads.emplace_back(worker, s);
  for (auto& t : threads) t.join();
  posts_ = 0;
  for (std::uint64_t n : shard_posts_) posts_ += n;
  if (error) std::rethrow_exception(error);
}

std::uint64_t ShardedEngine::events_executed() const {
  std::uint64_t n = 0;
  for (const auto& s : sims_) n += s->events_executed();
  return n;
}

std::uint64_t ShardedEngine::events_scheduled() const {
  std::uint64_t n = 0;
  for (const auto& s : sims_) n += s->events_scheduled();
  return n;
}

std::uint64_t ShardedEngine::events_cancelled() const {
  std::uint64_t n = 0;
  for (const auto& s : sims_) n += s->events_cancelled();
  return n;
}

}  // namespace cesrm::sim
