#include "sim/event_queue.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace cesrm::sim {

EventId EventQueue::schedule(SimTime when, Callback cb) {
  CESRM_CHECK_MSG(cb != nullptr, "null event callback");
  const EventId id = next_id_++;
  heap_.push_back(Entry{when, id, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  pending_.insert(id);
  if (pending_.size() > high_water_) high_water_ = pending_.size();
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (pending_.erase(id) == 0) return false;
  ++cancelled_;
  return true;
}

void EventQueue::drop_stale_top() {
  while (!heap_.empty() && pending_.count(heap_.front().id) == 0) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

SimTime EventQueue::next_time() {
  drop_stale_top();
  if (heap_.empty()) return SimTime::infinity();
  return heap_.front().when;
}

bool EventQueue::pop(SimTime& when, Callback& cb, EventId& id) {
  drop_stale_top();
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  when = e.when;
  cb = std::move(e.cb);
  id = e.id;
  pending_.erase(id);
  return true;
}

}  // namespace cesrm::sim
