#include "sim/event_queue.hpp"

namespace cesrm::sim {

// The schedule/cancel/pop hot path lives inline in the header; only the
// cold query stays out-of-line.

SimTime EventQueue::next_time() {
  drop_stale_top();
  if (heap_.empty()) return SimTime::infinity();
  return heap_.front().when;
}

}  // namespace cesrm::sim
