#include "sim/timer.hpp"

namespace cesrm::sim {

void Timer::arm(SimTime delay) { arm_at(sim_->now() + delay); }

void Timer::arm_at(SimTime when) {
  if (disabled_) return;
  cancel();
  expiry_ = when;
  id_ = sim_->schedule_at(when, [this] { fire(); });
}

void Timer::disable() {
  cancel();
  disabled_ = true;
}

void Timer::cancel() {
  if (id_ != kInvalidEventId) {
    sim_->cancel(id_);
    id_ = kInvalidEventId;
  }
}

void Timer::fire() {
  // Mark idle before invoking the callback so the callback may re-arm.
  id_ = kInvalidEventId;
  on_expire_();
}

}  // namespace cesrm::sim
