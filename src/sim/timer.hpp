// timer.hpp — a cancellable, reschedulable one-shot timer.
//
// SRM's recovery state machines juggle several timers per lost packet
// (request timeout, back-off abstinence, reply timeout, reply abstinence),
// each of which may be rescheduled or cancelled many times. Timer wraps
// the raw EventId plumbing: at most one pending expiry at a time, safe to
// reschedule from within its own callback, and destruction cancels any
// pending expiry so agents can be torn down mid-simulation.
#pragma once

#include <utility>

#include "sim/inline_function.hpp"
#include "sim/simulator.hpp"

namespace cesrm::sim {

class Timer {
 public:
  /// Same small-buffer-optimized callable as the event queue itself, so a
  /// timer's captures never force a heap allocation on the arm/fire path.
  using Callback = InlineFunction;

  /// `sim` must outlive the timer. The callback is fixed at construction;
  /// what varies per arm() is only the expiry time.
  Timer(Simulator& sim, Callback on_expire)
      : sim_(&sim), on_expire_(std::move(on_expire)) {}

  ~Timer() { cancel(); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// Arms (or re-arms) the timer to fire `delay` from now. Any previously
  /// pending expiry is cancelled first.
  void arm(SimTime delay);

  /// Arms to fire at absolute time `when` (>= now).
  void arm_at(SimTime when);

  /// Cancels a pending expiry; no-op when idle.
  void cancel();

  /// Permanently disarms the timer: cancels any pending expiry and turns
  /// every future arm()/arm_at() into a no-op. Used when the timer's owner
  /// crash-stops mid-simulation — any code path that would re-arm a dead
  /// member's timer becomes inert instead of resurrecting it.
  void disable();

  /// True once disable() has been called.
  bool disabled() const { return disabled_; }

  /// True while an expiry is pending.
  bool armed() const { return id_ != kInvalidEventId && sim_->is_pending(id_); }

  /// Absolute expiry time of the pending arm; infinity() when idle.
  SimTime expiry() const { return armed() ? expiry_ : SimTime::infinity(); }

 private:
  void fire();

  Simulator* sim_;
  Callback on_expire_;
  EventId id_ = kInvalidEventId;
  SimTime expiry_ = SimTime::infinity();
  bool disabled_ = false;
};

}  // namespace cesrm::sim
