#include "sim/simulator.hpp"

#include "util/check.hpp"

namespace cesrm::sim {

EventId Simulator::schedule_in(SimTime delay, EventQueue::Callback cb) {
  if (delay.is_negative()) delay = SimTime::zero();
  return queue_.schedule(now_ + delay, std::move(cb));
}

EventId Simulator::schedule_at(SimTime when, EventQueue::Callback cb) {
  CESRM_CHECK_MSG(when >= now_, "scheduling into the past: when=" << when
                                 << " now=" << now_);
  return queue_.schedule(when, std::move(cb));
}

bool Simulator::step() {
  SimTime when;
  EventQueue::Callback cb;
  EventId id;
  if (!queue_.pop(when, cb, id)) return false;
  CESRM_CHECK(when >= now_);
  now_ = when;
  ++executed_;
  cb();
  return true;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulator::run_until(SimTime until) {
  stopped_ = false;
  while (!stopped_) {
    const SimTime next = queue_.next_time();
    if (next > until) break;
    step();
  }
  if (now_ < until) now_ = until;
}

}  // namespace cesrm::sim
