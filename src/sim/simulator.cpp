#include "sim/simulator.hpp"

#include <chrono>

#include "util/check.hpp"

namespace cesrm::sim {

namespace {
double wall_now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

EventId Simulator::schedule_in(SimTime delay, EventQueue::Callback cb) {
  if (delay.is_negative()) delay = SimTime::zero();
  return queue_.schedule(now_ + delay, std::move(cb));
}

EventId Simulator::schedule_at(SimTime when, EventQueue::Callback cb) {
  CESRM_CHECK_MSG(when >= now_, "scheduling into the past: when=" << when
                                 << " now=" << now_);
  return queue_.schedule(when, std::move(cb));
}

EventId Simulator::schedule_at_tagged(SimTime when, std::uint64_t tag,
                                      EventQueue::Callback cb) {
  CESRM_CHECK_MSG(when >= now_, "scheduling into the past: when=" << when
                                 << " now=" << now_);
  return queue_.schedule_tagged(when, tag, std::move(cb));
}

bool Simulator::step() {
  SimTime when;
  EventQueue::Callback cb;
  EventId id;
  if (!queue_.pop(when, cb, id)) return false;
  CESRM_CHECK(when >= now_);
  now_ = when;
  ++executed_;
  if (profile_) profile_tick();
  cb();
  return true;
}

void Simulator::enable_profiling(bool on) {
  profile_ = on;
  if (on) {
    profile_second_ = now_.ns() / SimTime::seconds(1).ns();
    profile_last_wall_ = wall_now_seconds();
  }
}

void Simulator::profile_tick() {
  // Attribute wall time to each completed whole sim-second as the clock
  // crosses its boundary.
  const std::int64_t sec = now_.ns() / SimTime::seconds(1).ns();
  while (profile_second_ < sec) {
    const double wall = wall_now_seconds();
    if (wall_per_sim_second_.size() <=
        static_cast<std::size_t>(profile_second_)) {
      wall_per_sim_second_.resize(
          static_cast<std::size_t>(profile_second_) + 1, 0.0);
    }
    wall_per_sim_second_[static_cast<std::size_t>(profile_second_)] +=
        wall - profile_last_wall_;
    profile_last_wall_ = wall;
    ++profile_second_;
  }
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

void Simulator::run_window(SimTime end) {
  stopped_ = false;
  while (!stopped_) {
    const SimTime next = queue_.next_time();
    if (next >= end) break;
    step();
  }
}

void Simulator::run_until(SimTime until) {
  stopped_ = false;
  while (!stopped_) {
    const SimTime next = queue_.next_time();
    if (next > until) break;
    step();
  }
  if (now_ < until) now_ = until;
}

}  // namespace cesrm::sim
