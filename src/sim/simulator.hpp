// simulator.hpp — single-threaded discrete-event simulation driver.
//
// The Simulator owns the virtual clock and the event queue. All model
// components (links, protocol agents, traffic sources) schedule closures;
// the driver pops them in (time, FIFO) order and advances the clock. This
// is the same execution model as ns-2, which the paper used, minus the
// Tcl layer.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace cesrm::obs {
class TraceRecorder;
}  // namespace cesrm::obs

namespace cesrm::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time. Monotonically non-decreasing.
  SimTime now() const { return now_; }

  /// Schedules `cb` at `now() + delay`; negative delays are clamped to now
  /// (a zero-delay event still runs after the current event completes).
  EventId schedule_in(SimTime delay, EventQueue::Callback cb);

  /// Schedules `cb` at absolute time `when`; `when` must be >= now().
  EventId schedule_at(SimTime when, EventQueue::Callback cb);

  /// Schedules `cb` at `when` with an explicit ordering tag (see
  /// EventQueue::schedule_tagged). The sharded engine routes cross-shard
  /// arrivals through this so same-instant ties order identically for any
  /// shard count; plain schedule_at/in use tag 0 (historical FIFO).
  EventId schedule_at_tagged(SimTime when, std::uint64_t tag,
                             EventQueue::Callback cb);

  /// Cancels a pending event; returns true if it had not yet fired.
  bool cancel(EventId id) { return queue_.cancel(id); }
  bool is_pending(EventId id) const { return queue_.is_pending(id); }

  /// Runs a single event. Returns false when the queue is empty.
  bool step();

  /// Runs until the queue empties (or stop() is called).
  void run();

  /// Runs events with time <= `until`, then sets the clock to `until`
  /// (if the simulation did not already pass it). Pending later events stay
  /// queued.
  void run_until(SimTime until);

  /// Runs events with time strictly < `end`, leaving the clock at the last
  /// executed event; later events stay queued. The sharded engine's
  /// lookahead-window body (run_until is inclusive and clamps the clock,
  /// which a mid-simulation window must not do).
  void run_window(SimTime end);

  /// Earliest pending event's time; infinity() when the queue is empty.
  /// Non-const: lazily discards cancelled heap tops.
  SimTime next_event_time() { return queue_.next_time(); }

  /// Clamps the clock forward to `t` if it is behind (the sharded engine's
  /// end-of-run epilogue, mirroring run_until's final clamp).
  void advance_clock(SimTime t) {
    if (now_ < t) now_ = t;
  }

  /// Makes run()/run_until() return after the current event.
  void stop() { stopped_ = true; }

  /// Number of events executed so far.
  std::uint64_t events_executed() const { return executed_; }
  /// Number of events currently pending.
  std::size_t pending_events() const { return queue_.size(); }
  /// Lifetime queue diagnostics (see EventQueue).
  std::uint64_t events_scheduled() const { return queue_.scheduled_total(); }
  std::uint64_t events_cancelled() const { return queue_.cancelled_total(); }
  std::size_t queue_high_water() const { return queue_.high_water(); }

  /// Observability hook. The recorder is owned by the harness; sim only
  /// forward-declares it so the event loop has no obs dependency. Null
  /// (the default) means tracing is disabled and hook sites reduce to one
  /// pointer test.
  void set_recorder(obs::TraceRecorder* rec) { recorder_ = rec; }
  obs::TraceRecorder* recorder() const { return recorder_; }

  /// When enabled, step() samples a wall clock at every whole-sim-second
  /// boundary; wall_per_sim_second()[i] is the wall time (seconds) spent
  /// executing sim-second i. Off by default — the sample sits on the hot
  /// path. Wall times are nondeterministic; exporters must keep them out
  /// of determinism-checked artifacts.
  void enable_profiling(bool on);
  const std::vector<double>& wall_per_sim_second() const {
    return wall_per_sim_second_;
  }

 private:
  void profile_tick();

  EventQueue queue_;
  SimTime now_ = SimTime::zero();
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  obs::TraceRecorder* recorder_ = nullptr;
  bool profile_ = false;
  std::int64_t profile_second_ = 0;
  double profile_last_wall_ = 0.0;
  std::vector<double> wall_per_sim_second_;
};

}  // namespace cesrm::sim
