// time.hpp — simulated time.
//
// Simulated time is an integer count of nanoseconds wrapped in a strong
// type. Integer ticks (rather than ns-2's doubles) make event ordering and
// replay exact: two runs with the same seed produce identical schedules.
// The same type serves as both a point in time and a duration; the protocol
// layers mostly manipulate durations scaled by dimensionless parameters
// (C1, D1, ...), which `operator*(double)` supports with round-to-nearest.
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <ostream>

namespace cesrm::sim {

/// A point in simulated time or a duration, in integer nanoseconds.
class SimTime {
 public:
  constexpr SimTime() = default;

  static constexpr SimTime nanos(std::int64_t ns) { return SimTime(ns); }
  static constexpr SimTime micros(std::int64_t us) { return SimTime(us * 1000); }
  static constexpr SimTime millis(std::int64_t ms) {
    return SimTime(ms * 1000000);
  }
  static constexpr SimTime seconds(std::int64_t s) {
    return SimTime(s * 1000000000);
  }
  /// From floating-point seconds, rounded to the nearest tick.
  static SimTime from_seconds(double s) {
    return SimTime(static_cast<std::int64_t>(std::llround(s * 1e9)));
  }
  static constexpr SimTime zero() { return SimTime(0); }
  /// Largest representable time; used as "never".
  static constexpr SimTime infinity() {
    return SimTime(INT64_MAX);
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double to_millis() const { return static_cast<double>(ns_) / 1e6; }

  constexpr bool is_zero() const { return ns_ == 0; }
  constexpr bool is_negative() const { return ns_ < 0; }

  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime(a.ns_ + b.ns_);
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime(a.ns_ - b.ns_);
  }
  SimTime& operator+=(SimTime o) {
    ns_ += o.ns_;
    return *this;
  }
  SimTime& operator-=(SimTime o) {
    ns_ -= o.ns_;
    return *this;
  }
  /// Duration scaling, round-to-nearest tick.
  friend SimTime operator*(SimTime a, double k) {
    return SimTime(static_cast<std::int64_t>(
        std::llround(static_cast<double>(a.ns_) * k)));
  }
  friend SimTime operator*(double k, SimTime a) { return a * k; }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) {
    return SimTime(a.ns_ * k);
  }
  /// Ratio of two durations.
  friend constexpr double operator/(SimTime a, SimTime b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }

  friend constexpr auto operator<=>(SimTime a, SimTime b) = default;

  friend std::ostream& operator<<(std::ostream& os, SimTime t) {
    return os << t.to_seconds() << "s";
  }

 private:
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

}  // namespace cesrm::sim
