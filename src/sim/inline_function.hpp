// inline_function.hpp — a small-buffer-optimized move-only callable.
//
// The event queue schedules tens of millions of closures per Table-1
// sweep; with std::function each schedule() pays a heap allocation for
// any capture larger than the libstdc++ SBO (two pointers). InlineFunction
// stores captures up to kInlineCapacity bytes directly inside the object
// — sized so every simulator hop closure (this + endpoints + a
// ref-counted packet handle + mode) fits — and falls back to the heap
// only for oversized or throwing-move callables. Dispatch is a single
// static ops-table pointer instead of std::function's vtable machinery.
//
// Semantics: move-only (the queue never copies callbacks), callable
// repeatedly (Timer invokes its stored callback on every expiry), and
// null-testable so call sites keep their `cb != nullptr` checks.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace cesrm::sim {

class InlineFunction {
 public:
  /// Inline capture budget. The largest hot-path closure is Network's hop
  /// continuation: {Network*, two NodeIds, a shared_ptr<const Packet>,
  /// Mode} ≈ 40 bytes; 64 leaves headroom for fault-injection closures
  /// without bloating the event-queue slot pool.
  static constexpr std::size_t kInlineCapacity = 64;

  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, InlineFunction> &&
                std::is_invocable_r_v<void, D&>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  /// Invokes the stored callable; undefined when null (like std::function
  /// minus the bad_function_call ceremony — the queue checks at schedule).
  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const { return ops_ != nullptr; }
  friend bool operator==(const InlineFunction& f, std::nullptr_t) {
    return f.ops_ == nullptr;
  }
  friend bool operator!=(const InlineFunction& f, std::nullptr_t) {
    return f.ops_ != nullptr;
  }

  /// Destroys the stored callable and returns to the null state.
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* p);
    /// Move-constructs into dst from src and destroys src.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* p);
  };

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineCapacity &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*std::launder(reinterpret_cast<D*>(p)))(); },
      [](void* dst, void* src) {
        D* s = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* p) { std::launder(reinterpret_cast<D*>(p))->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* p) { (**std::launder(reinterpret_cast<D**>(p)))(); },
      [](void* dst, void* src) {
        ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
      },
      [](void* p) { delete *std::launder(reinterpret_cast<D**>(p)); },
  };

  void move_from(InlineFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buf_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace cesrm::sim
