// event_queue.hpp — the simulator's pending-event set.
//
// A binary min-heap ordered by (time, insertion sequence) so that events
// scheduled for the same tick fire in FIFO order — a property the SRM
// suppression logic relies on for determinism. Cancellation is lazy: the
// heap entry of a cancelled event stays in place and is skipped at pop
// time; the authoritative liveness record is the `pending_` id set. This
// keeps cancel() O(1), which matters because SRM suppression cancels a
// large fraction of all scheduled timers.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace cesrm::sim {

/// Identifier for a scheduled event; valid ids are non-zero.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

/// Min-heap of (time, callback) with O(1) lazy cancellation.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` at absolute time `when`; returns its id.
  EventId schedule(SimTime when, Callback cb);

  /// Cancels a pending event. Returns true if it was still pending;
  /// cancelling an already-fired or unknown id returns false.
  bool cancel(EventId id);

  /// True while `id` is scheduled and has neither fired nor been cancelled.
  bool is_pending(EventId id) const { return pending_.count(id) != 0; }

  /// True if no live (non-cancelled) events remain.
  bool empty() const { return pending_.empty(); }
  /// Number of live pending events.
  std::size_t size() const { return pending_.size(); }

  /// Time of the earliest live event; infinity() when empty.
  SimTime next_time();

  /// Pops the earliest live event; fills `when`/`cb`/`id`. Returns false
  /// when the queue is empty.
  bool pop(SimTime& when, Callback& cb, EventId& id);

  /// Total events ever scheduled (diagnostics / micro-benchmarks).
  std::uint64_t scheduled_total() const { return next_id_ - 1; }
  /// Total events cancelled before firing.
  std::uint64_t cancelled_total() const { return cancelled_; }
  /// Largest number of simultaneously-pending events seen so far.
  std::size_t high_water() const { return high_water_; }

 private:
  struct Entry {
    SimTime when;
    EventId id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;  // FIFO among equal times
    }
  };

  void drop_stale_top();

  std::vector<Entry> heap_;
  std::unordered_set<EventId> pending_;
  EventId next_id_ = 1;
  std::uint64_t cancelled_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace cesrm::sim
