// event_queue.hpp — the simulator's pending-event set.
//
// A 4-ary implicit min-heap ordered by (time, tag, schedule sequence) so
// that events scheduled for the same tick fire in FIFO order — a property
// the SRM suppression logic relies on for determinism. The middle `tag`
// key is 0 for every plainly-scheduled event, so the default order is the
// historical (time, sequence) FIFO exactly; the sharded parallel engine
// schedules cross-shard arrivals through schedule_tagged() with a
// deterministic ⟨origin location, per-location counter⟩ tag so that
// same-instant ties resolve identically for any shard count (the schedule
// *sequence* is a per-queue artifact of execution interleaving and cannot
// be used across shards). Callbacks live in a generation-tagged slot pool:
// an EventId encodes ⟨generation, slot⟩, so cancel() and is_pending() are
// two array reads and a tag compare — no hashing, no per-event allocation
// (the callback's captures sit inline in the slot via InlineFunction).
// Cancellation stays lazy: the heap entry of a cancelled event is skipped
// at pop time when its generation tag no longer matches the slot. This
// keeps cancel() O(1), which matters because SRM suppression cancels a
// large fraction of all scheduled timers, and frees the cancelled
// callback's captures immediately.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/inline_function.hpp"
#include "sim/time.hpp"
#include "util/check.hpp"

namespace cesrm::sim {

/// Identifier for a scheduled event; valid ids are non-zero. Encodes the
/// pool slot (low 32 bits) and its generation tag (high 32 bits).
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

/// Min-heap of (time, callback) with O(1) allocation-free cancellation.
/// The schedule/cancel/pop hot path is defined inline below the class —
/// every packet hop goes through it, so cross-TU call overhead matters.
class EventQueue {
 public:
  using Callback = InlineFunction;

  /// Schedules `cb` at absolute time `when`; returns its id. Ties at the
  /// same instant fire in schedule order (tag 0, FIFO).
  EventId schedule(SimTime when, Callback cb) {
    return schedule_tagged(when, 0, std::move(cb));
  }

  /// Schedules `cb` at `when` with an explicit ordering tag. Among events
  /// at the same instant, lower tags fire first (tag 0 — every plain
  /// schedule() — before all tagged events); equal tags fall back to
  /// schedule order. Tags let the sharded engine impose an execution-
  /// independent total order on cross-shard arrivals.
  EventId schedule_tagged(SimTime when, std::uint64_t tag, Callback cb);

  /// Cancels a pending event. Returns true if it was still pending;
  /// cancelling an already-fired or unknown id returns false.
  bool cancel(EventId id);

  /// True while `id` is scheduled and has neither fired nor been cancelled.
  bool is_pending(EventId id) const {
    const std::uint32_t slot = slot_of(id);
    if (slot >= slot_count_) return false;
    const Slot& s = slot_at(slot);
    return s.live && s.gen == gen_of(id);
  }

  /// True if no live (non-cancelled) events remain.
  bool empty() const { return live_ == 0; }
  /// Number of live pending events.
  std::size_t size() const { return live_; }

  /// Time of the earliest live event; infinity() when empty.
  SimTime next_time();

  /// Pops the earliest live event; fills `when`/`cb`/`id`. Returns false
  /// when the queue is empty.
  bool pop(SimTime& when, Callback& cb, EventId& id);

  /// Total events ever scheduled (diagnostics / micro-benchmarks).
  std::uint64_t scheduled_total() const { return scheduled_; }
  /// Total events cancelled before firing.
  std::uint64_t cancelled_total() const { return cancelled_; }
  /// Largest number of simultaneously-pending events seen so far.
  std::size_t high_water() const { return high_water_; }

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  struct Slot {
    Callback cb;
    std::uint32_t gen = 1;        ///< bumped on free; 0 is never valid
    std::uint32_t next_free = kNoSlot;
    bool live = false;
  };

  struct HeapEntry {
    SimTime when;
    std::uint64_t tag;  ///< cross-shard deterministic tie-break (0 = FIFO)
    std::uint64_t seq;  ///< monotonic schedule order — final tie-break
    std::uint32_t slot;
    std::uint32_t gen;
  };

  static std::uint32_t slot_of(EventId id) {
    return static_cast<std::uint32_t>(id & 0xffffffffu);
  }
  static std::uint32_t gen_of(EventId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }

  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.when != b.when) return a.when < b.when;
    if (a.tag != b.tag) return a.tag < b.tag;
    return a.seq < b.seq;
  }

  /// True when the heap entry still refers to a live event (its slot has
  /// not been freed and reissued since the entry was pushed).
  bool entry_live(const HeapEntry& e) const {
    const Slot& s = slot_at(e.slot);
    return s.live && s.gen == e.gen;
  }

  /// Slots live in fixed-size chunks so growth never relocates a Slot
  /// (relocation would run InlineFunction move ctors for the whole pool).
  static constexpr std::uint32_t kChunkShift = 10;  // 1024 slots per chunk
  static constexpr std::uint32_t kChunkMask = (1u << kChunkShift) - 1;

  Slot& slot_at(std::uint32_t i) {
    return chunks_[i >> kChunkShift][i & kChunkMask];
  }
  const Slot& slot_at(std::uint32_t i) const {
    return chunks_[i >> kChunkShift][i & kChunkMask];
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void drop_stale_top();
  void free_slot(std::uint32_t slot);

  std::vector<HeapEntry> heap_;  ///< 4-ary implicit heap
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t slot_count_ = 0;
  std::uint32_t free_head_ = kNoSlot;
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
  std::uint64_t scheduled_ = 0;
  std::uint64_t cancelled_ = 0;
  std::size_t high_water_ = 0;
};

// ---- hot path, kept inline (header) for cross-TU inlining ----

inline EventId EventQueue::schedule_tagged(SimTime when, std::uint64_t tag,
                                           Callback cb) {
  CESRM_CHECK_MSG(cb != nullptr, "null event callback");
  std::uint32_t slot;
  if (free_head_ != kNoSlot) {
    slot = free_head_;
    free_head_ = slot_at(slot).next_free;
  } else {
    slot = slot_count_++;
    if ((slot >> kChunkShift) == chunks_.size())
      chunks_.push_back(std::make_unique<Slot[]>(std::size_t{1}
                                                 << kChunkShift));
  }
  Slot& s = slot_at(slot);
  s.cb = std::move(cb);
  s.live = true;

  heap_.push_back(HeapEntry{when, tag, next_seq_++, slot, s.gen});
  sift_up(heap_.size() - 1);

  ++scheduled_;
  ++live_;
  if (live_ > high_water_) high_water_ = live_;
  return (static_cast<EventId>(s.gen) << 32) | slot;
}

inline bool EventQueue::cancel(EventId id) {
  const std::uint32_t slot = slot_of(id);
  if (slot >= slot_count_) return false;
  Slot& s = slot_at(slot);
  if (!s.live || s.gen != gen_of(id)) return false;
  free_slot(slot);  // the heap entry goes stale and is skipped at pop time
  --live_;
  ++cancelled_;
  return true;
}

inline void EventQueue::free_slot(std::uint32_t slot) {
  Slot& s = slot_at(slot);
  s.cb.reset();  // release captures eagerly, not at heap-drain time
  s.live = false;
  if (++s.gen == 0) s.gen = 1;  // 0 must never appear in a valid id
  s.next_free = free_head_;
  free_head_ = slot;
}

inline void EventQueue::sift_up(std::size_t i) {
  HeapEntry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!earlier(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

inline void EventQueue::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  HeapEntry e = heap_[i];
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = first + 4 < n ? first + 4 : n;
    for (std::size_t c = first + 1; c < last; ++c)
      if (earlier(heap_[c], heap_[best])) best = c;
    if (!earlier(heap_[best], e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

inline void EventQueue::drop_stale_top() {
  while (!heap_.empty() && !entry_live(heap_.front())) {
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }
}

inline bool EventQueue::pop(SimTime& when, Callback& cb, EventId& id) {
  drop_stale_top();
  if (heap_.empty()) return false;
  const HeapEntry e = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);

  when = e.when;
  id = (static_cast<EventId>(e.gen) << 32) | e.slot;
  cb = std::move(slot_at(e.slot).cb);
  free_slot(e.slot);
  --live_;
  return true;
}

}  // namespace cesrm::sim
